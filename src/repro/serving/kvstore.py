"""In-process key-value store with cost accounting (the "Redis-like" store of Section 9).

The production system stores each user's most recent RNN hidden state (a
512-byte vector) — or, for the traditional models, the per-user aggregation
state — in a real-time key-value store.  For the reproduction what matters is
not the store's implementation but its *cost profile*: how many reads and
writes each serving path issues and how many bytes it must keep per user.
:class:`KeyValueStore` therefore tracks every operation and the size of every
stored value so the serving cost model can report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import numpy as np

from .arena import ArenaSpec, StateArena
from .telemetry import NULL_REGISTRY, MetricsRegistry
from .tracing import NULL_TRACER, Tracer

__all__ = ["KVStats", "KeyValueStore"]

#: Sentinels.  ``_IN_ARENA`` is what ``_data`` holds for a key whose value
#: lives in the attached :class:`StateArena` slab — key membership, sizes and
#: metering stay in the store's own dicts, only the payload moves.
_MISSING = object()
_IN_ARENA = object()

#: The KVStats counter fields, in snapshot order — shared by the legacy
#: meters and their registry mirrors so the two can never disagree on shape.
KV_COUNTER_FIELDS = ("gets", "puts", "deletes", "hits", "misses", "bytes_read", "bytes_written")


@dataclass
class KVStats:
    """Operation counters for a key-value store."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "gets": self.gets,
            "puts": self.puts,
            "deletes": self.deletes,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


def _estimate_size(value: Any) -> int:
    """Approximate serialized size of a stored value in bytes."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, dict):
        return sum(_estimate_size(k) + _estimate_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return sum(_estimate_size(v) for v in value)
    return 64  # conservative default for unknown objects


class KeyValueStore:
    """Dictionary-backed KV store that meters reads, writes and storage.

    With a :class:`~repro.serving.telemetry.MetricsRegistry` attached, the
    legacy ``KVStats`` meters surface as counters named
    ``kv.<name>.<field>`` through a registered *sync hook*: the hot path
    (get/put/delete under every prediction and update) pays nothing extra,
    and the registry copies the current ``KVStats`` values into the
    counters whenever it is read — an exact view by construction,
    property-tested in ``tests/test_telemetry.py``.  Store names must be
    unique within a registry or their counters would collide.
    """

    def __init__(self, name: str = "kv", *, registry: MetricsRegistry | None = None) -> None:
        self.name = name
        self._data: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self.arena: StateArena | None = None
        self.stats = KVStats()
        self.metrics = registry if registry is not None else NULL_REGISTRY
        self._counters = {
            field_name: self.metrics.counter(f"kv.{name}.{field_name}")
            for field_name in KV_COUNTER_FIELDS
        }
        self.metrics.register_sync(self._sync_metrics)
        self.tracer: Tracer = NULL_TRACER

    def attach_tracer(self, tracer: Tracer) -> None:
        """Record metered operations as ``kv.*`` trace instants.

        Hooks are observation only — they read the amounts the meters
        already computed and never touch stored data, so a traced store
        stays bit- and meter-identical to an untraced one.  Unmetered
        paths (``peek``/``put_unmetered``, i.e. repair and migration
        traffic) record nothing, mirroring the metering rules.
        """
        self.tracer = tracer

    def _sync_metrics(self) -> None:
        """Copy the live ``KVStats`` into the registry counters (sync hook)."""
        stats = self.stats
        for field_name, counter in self._counters.items():
            counter.value = getattr(stats, field_name)

    # ------------------------------------------------------------------
    # Arena hosting
    # ------------------------------------------------------------------
    def attach_state_arena(self, spec: ArenaSpec) -> StateArena:
        """Host a :class:`StateArena` for records matching ``spec``.

        Idempotent for an identical spec (backends attach on construction,
        and several backends may share a store); a contradictory spec is a
        hard error — one slab cannot hold two record shapes.  Existing
        per-key records under the prefix are left in place: reads keep
        finding them, and the next write of each key absorbs it into the
        slab.
        """
        if self.arena is not None:
            if self.arena.spec != spec:
                raise ValueError(
                    f"store {self.name!r} already hosts an arena with spec "
                    f"{self.arena.spec}, cannot attach {spec}"
                )
            return self.arena
        self.arena = StateArena(spec)
        return self.arena

    def _materialize(self, value: Any, key: str) -> Any:
        return self.arena.record(key) if value is _IN_ARENA else value

    def _store(self, key: str, value: Any, size: int) -> None:
        """Shared unmetered write: route record-shaped values into the arena."""
        arena = self.arena
        if arena is not None:
            if arena.accepts(key, value):
                arena.ingest(key, value)
                value = _IN_ARENA
            elif self._data.get(key) is _IN_ARENA:
                arena.discard(key)
        self._data[key] = value
        self._sizes[key] = size

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        self.stats.gets += 1
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.stats.hits += 1
            self.stats.bytes_read += self._sizes[key]
            if self.tracer.enabled:
                self.tracer.kv_op("get", self.name, 1, self._sizes[key])
            return self._materialize(value, key)
        self.stats.misses += 1
        if self.tracer.enabled:
            self.tracer.kv_op("get", self.name, 1, 0)
        return default

    def put(self, key: str, value: Any, size_bytes: int | None = None) -> None:
        size = size_bytes if size_bytes is not None else _estimate_size(value)
        self.stats.puts += 1
        self.stats.bytes_written += size
        if self.tracer.enabled:
            self.tracer.kv_op("put", self.name, 1, size)
        self._store(key, value, size)

    def delete(self, key: str) -> bool:
        self.stats.deletes += 1
        value = self._data.pop(key, _MISSING)
        if value is not _MISSING:
            del self._sizes[key]
            if value is _IN_ARENA:
                self.arena.discard(key)
            return True
        return False

    # ------------------------------------------------------------------
    # Batch APIs: bit- and meter-identical to the equivalent loops
    # ------------------------------------------------------------------
    def get_many(self, keys: list[str], default: Any = None) -> list[Any]:
        """``[self.get(key, default) for key in keys]`` in one call.

        Counters are additive, so metering the batch in one pass reads
        exactly like the loop (pinned by ``tests/test_batch_kv.py``).
        """
        values: list[Any] = []
        hits = 0
        bytes_read = 0
        for key in keys:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                values.append(default)
            else:
                hits += 1
                bytes_read += self._sizes[key]
                values.append(self._materialize(value, key))
        stats = self.stats
        stats.gets += len(keys)
        stats.hits += hits
        stats.misses += len(keys) - hits
        stats.bytes_read += bytes_read
        if self.tracer.enabled:
            self.tracer.kv_op("get_many", self.name, len(keys), bytes_read)
        return values

    def put_many(self, items: Iterable[tuple[str, Any, int | None]]) -> None:
        """Apply ``(key, value, size_bytes)`` writes; the looped equivalent
        of calling :meth:`put` per item, with one meter update."""
        count = 0
        bytes_written = 0
        for key, value, size_bytes in items:
            size = size_bytes if size_bytes is not None else _estimate_size(value)
            count += 1
            bytes_written += size
            self._store(key, value, size)
        self.stats.puts += count
        self.stats.bytes_written += bytes_written
        if self.tracer.enabled:
            self.tracer.kv_op("put_many", self.name, count, bytes_written)

    # ------------------------------------------------------------------
    # Vectorized state waves (requires an attached arena)
    # ------------------------------------------------------------------
    def gather_states(self, keys: list[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized state read: ``(float64 states, int64 timestamps, present)``.

        Meters exactly like one :meth:`get` per key.  Missing keys read as
        zero states with ``present=False``; keys whose value still lives as
        a per-key record (written before the arena attached, or oddly
        shaped) decode through the record path, so mixed storage stays
        correct.
        """
        arena = self.arena
        if arena is None:
            raise RuntimeError(f"store {self.name!r} has no state arena attached")
        spec = arena.spec
        n = len(keys)
        states = np.zeros((n, spec.state_size), dtype=np.float64)
        timestamps = np.zeros(n, dtype=np.int64)
        present = np.zeros(n, dtype=bool)
        arena_rows: list[int] = []
        arena_positions: list[int] = []
        stray: list[tuple[int, dict[str, Any]]] = []
        hits = 0
        bytes_read = 0
        for position, key in enumerate(keys):
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                continue
            hits += 1
            bytes_read += self._sizes[key]
            present[position] = True
            if value is _IN_ARENA:
                arena_positions.append(position)
                arena_rows.append(arena.row_of(key))
            else:
                stray.append((position, value))
        stats = self.stats
        stats.gets += n
        stats.hits += hits
        stats.misses += n - hits
        stats.bytes_read += bytes_read
        if self.tracer.enabled:
            self.tracer.kv_op("gather_states", self.name, n, bytes_read)
        if arena_positions:
            positions = np.asarray(arena_positions, dtype=np.intp)
            rows = np.asarray(arena_rows, dtype=np.intp)
            gathered, row_timestamps = arena.gather(rows)
            states[positions] = gathered
            timestamps[positions] = row_timestamps
        for position, record in stray:
            stored = np.asarray(record["state"], dtype=np.float64)
            if spec.quantized:
                stored = stored * float(record["scale"])
            states[position] = stored
            timestamps[position] = record["timestamp"]
        return states, timestamps, present

    def scatter_states(self, keys: list[str], states: np.ndarray, timestamps: np.ndarray) -> None:
        """Vectorized state write: one slab scatter for the whole wave.

        Meters exactly like one :meth:`put` of a fresh record per key (size
        = the spec's per-record bytes, the same value the per-key save path
        computes).  Duplicate keys behave like sequential puts (last wins).
        """
        arena = self.arena
        if arena is None:
            raise RuntimeError(f"store {self.name!r} has no state arena attached")
        rows = arena.assign_rows(keys)
        arena.scatter(rows, states, timestamps)
        size = arena.spec.record_bytes
        data = self._data
        sizes = self._sizes
        for key in keys:
            data[key] = _IN_ARENA
            sizes[key] = size
        self.stats.puts += len(keys)
        self.stats.bytes_written += len(keys) * size
        if self.tracer.enabled:
            self.tracer.kv_op("scatter_states", self.name, len(keys), len(keys) * size)

    def contains(self, key: str) -> bool:
        return key in self._data

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())

    def size_of(self, key: str) -> int:
        """Recorded size of ``key``'s value (0 when absent).  Does not meter:
        replication and migration use it to forward a value's original size
        without charging a phantom read."""
        return self._sizes.get(key, 0)

    def peek(self, key: str, default: Any = None) -> Any:
        """Unmetered read.  The replica pool uses it for read-repair and
        re-hydration copies, which are infrastructure traffic — they are
        accounted under the pool's ``ring.repair_*`` meters, not billed as
        client reads."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        return self._materialize(value, key)

    def put_unmetered(self, key: str, value: Any, size_bytes: int) -> None:
        """Unmetered write (the repair counterpart of :meth:`peek`): stores
        the value and its size without touching the client traffic meters."""
        self._store(key, value, size_bytes)

    def clear(self) -> None:
        """Drop every stored value, keeping the traffic meters.  Models a
        crash that loses a shard's *state* — the requests it already served
        still happened."""
        self._data.clear()
        self._sizes.clear()
        if self.arena is not None:
            self.arena.clear()

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return len(self._data)

    @property
    def total_bytes(self) -> int:
        """Current storage footprint across all keys."""
        return int(sum(self._sizes.values()))

    def bytes_for_prefix(self, prefix: str) -> int:
        return int(sum(size for key, size in self._sizes.items() if key.startswith(prefix)))

    def reset_stats(self) -> None:
        """Zero the traffic meters.  The registry view follows automatically
        — it syncs from the (fresh) ``KVStats`` on its next read."""
        self.stats = KVStats()

    def registry_stats(self) -> KVStats | None:
        """The registry's view of this store's traffic as a ``KVStats``
        (``None`` without a real registry).  Reads through the registry's
        sync machinery, so it equals :attr:`stats` bit for bit."""
        if not self.metrics.enabled:
            return None
        self.metrics._sync()
        return KVStats(**{name: counter.value for name, counter in self._counters.items()})
