"""Hidden-state quantization (Section 9, "Relative production resources").

The paper notes that the per-user hidden state offers fine-grained control
over the storage footprint: the dimensionality can be reduced, and "neural
network quantization methods can also be applied to store single bytes
instead of floating-point numbers for each dimension".  This module provides
the simple symmetric int8 scheme that claim refers to, plus a helper that
reports the quality impact of round-tripping a batch of states.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_state", "dequantize_state", "quantization_error"]


def quantize_state(state: np.ndarray) -> tuple[np.ndarray, float]:
    """Symmetric int8 quantization of a hidden-state vector.

    Returns ``(int8 array, scale)`` such that ``state ≈ int8 * scale``.
    An all-zero state quantizes to scale 0.
    """
    state = np.asarray(state, dtype=np.float64)
    peak = float(np.max(np.abs(state))) if state.size else 0.0
    if peak == 0.0:
        return np.zeros(state.shape, dtype=np.int8), 0.0
    scale = peak / 127.0
    quantized = np.clip(np.round(state / scale), -127, 127).astype(np.int8)
    return quantized, scale


def dequantize_state(quantized: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_state`."""
    return np.asarray(quantized, dtype=np.float64) * float(scale)


def quantization_error(states: np.ndarray) -> dict[str, float]:
    """Round-trip error statistics for a batch of hidden states.

    Returns the mean absolute error, max absolute error, and the storage
    reduction factor (4x for float32 → int8).
    """
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    errors = []
    for row in states:
        quantized, scale = quantize_state(row)
        errors.append(np.abs(dequantize_state(quantized, scale) - row))
    stacked = np.concatenate(errors) if errors else np.zeros(1)
    return {
        "mean_abs_error": float(stacked.mean()),
        "max_abs_error": float(stacked.max()),
        "storage_reduction": 4.0,
    }
