"""Request-level distributed tracing over the simulated clock.

The serving pipeline's telemetry plane answers *aggregate* questions
(p99 update delay, shed rate, wave sizes); this module answers the
per-request one — "where did *this* request's latency go?" — with
deterministic span trees laid out on the simulated clock:

* a **root span** per sampled submitted request (``request``), with
  child spans for queue wait (``queue.wait``), the scoring interval
  (``predict``), the open session window (``session.window``), the
  wave-coalescing defer (``update.wave_wait``) and the applied GRU
  update (``update.apply`` instant);
* **batch lane** spans for every flushed micro-batch
  (``predict_batch``) and delivered timer wave (``apply_wave``), to
  which the KV layer attaches per-shard ``kv.*`` instants
  (``gather_states`` / ``scatter_states`` / ``get_many`` / … with
  shard, op/key-count and byte attributes, aggregated per operation
  kind and shard within each lane — simulated time does not advance
  inside a batch, so per-call instants would stack at one timestamp
  while costing a span per KV operation on the hottest loop);
* **control lane** instants for admission decisions, SLO-health
  transitions, autoscaler ticks, failure-schedule events and rollout
  stage transitions.

Everything is derived from values the pipeline already computes —
hooks are pure observation, so a traced engine is bit-identical
(predictions, stored state, every meter) to its untraced twin; the
property suite in ``tests/test_tracing.py`` pins that invariant.

Sampling follows the canary-cohort idiom: a stable BLAKE2b hash of
``user_id|timestamp`` against ``sample_pct``, so the sampled subset is
reproducible across runs and processes.  Batch/wave/control spans are
always recorded while the tracer is enabled — only per-request trees
are sampled.

``Tracer.chrome_trace()`` exports the Chrome trace-event format
(load the ``<run>.trace.json`` artifact in ``chrome://tracing`` or
https://ui.perfetto.dev); :class:`TraceAnalyzer` computes per-request
critical paths and the queue / compute / update-defer latency
breakdown consumable as experiment columns.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterable, Mapping

__all__ = ["Span", "Tracer", "TraceAnalyzer", "NULL_TRACER"]

_pack_request_key = struct.Struct("!qd").pack


def _stable_hash(user_id: int, timestamp: float) -> int:
    """Deterministic across processes (same BLAKE2b idiom as the shard
    ring and canary cohorts; packed binary key rather than a formatted
    string because this runs once per request on the serving hot path)."""
    return int.from_bytes(
        hashlib.blake2b(_pack_request_key(user_id, timestamp), digest_size=8).digest(), "big"
    )


class Span:
    """One interval (or instant) on the simulated clock.

    ``start``/``end`` are simulated seconds (the stream's timeline, not
    wall-clock); ``kind`` is ``"span"`` for intervals and ``"instant"``
    for zero-width point events.  ``trace_id`` groups a request tree;
    batch/control-lane spans have ``trace_id == 0``.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "cat", "start", "end", "kind", "attrs")

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        name: str,
        cat: str,
        start: float,
        end: float,
        kind: str = "span",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start = float(start)
        self.end = float(end)
        self.kind = kind
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, [{self.start}, {self.end}], "
            f"id={self.span_id}, trace={self.trace_id}, parent={self.parent_id})"
        )


#: Field offsets of the tracer's internal raw records (batch-lane,
#: ``kv.*`` and control-plane events).  The benchmarked overhead budget
#: (<5% of the batch-64 hot path, ``benchmarks/test_bench_telemetry.py``)
#: leaves no room for an object construction per span on the hot path, so
#: the tracer appends plain lists and mutates them in place;
#: :class:`Span` objects are materialized lazily on read.
_ID, _TRACE, _PARENT, _NAME, _CAT, _START, _END, _KIND, _ATTRS = range(9)

#: Field offsets of the per-request tree rows.  A request tree is fully
#: determined by seven timestamps/counters, so the hot path records
#: exactly one 9-slot row per sampled request and stamps slots as the
#: request moves through the pipeline; the root span and its five
#: children (queue.wait / predict / session.window / update.wave_wait /
#: update.apply) are synthesized from the row at export time.
(_T_USER, _T_START, _T_REF, _T_COMP, _T_KV_LOOKUPS, _T_KV_BYTES,
 _T_FIRE, _T_WAVE_END, _T_WAVE_AT) = range(9)


class Tracer:
    """Correlates pipeline hooks into deterministic span trees.

    The pipeline calls the hook methods below at the points where it
    already knows the relevant timestamps; the tracer never computes
    new ones, so enabling it cannot perturb the simulation.  Request
    trees are correlated FIFO on ``(user_id, timestamp)`` — the replay
    contract submits a request and observes its session with the same
    pair, in order.  Requests shed at admission (or whose session
    closes while they sit deferred) simply have no root registered
    when the session publishes, so their session/update spans are
    dropped rather than mis-attached: tracing is best-effort for
    rejected work, exact for admitted work.
    """

    enabled = True

    def __init__(self, sample_pct: int = 100) -> None:
        if not isinstance(sample_pct, int) or isinstance(sample_pct, bool):
            raise TypeError(f"sample_pct must be an int, got {sample_pct!r}")
        if not 1 <= sample_pct <= 100:
            raise ValueError(f"sample_pct must be in [1, 100], got {sample_pct}")
        self.sample_pct = sample_pct
        self._records: list[list[Any]] = []
        self._n_spans = 0
        # one compact row per sampled request (``_T_*`` offsets); the
        # row's index is its ``trace_id - 1``
        self._trees: list[list[Any]] = []
        # request object -> tree row, popped when its batch scores
        self._by_request: dict[int, list[Any]] = {}
        # (user_id, timestamp) -> tree rows awaiting session publication
        self._session_fifo: dict[tuple[int, float], list[list[Any]]] = {}
        # (user_id, timestamp) -> tree rows awaiting wave delivery
        self._wave_fifo: dict[tuple[int, float], list[list[Any]]] = {}
        # batch/wave record KV instants attach to while one is open
        self._context: list[Any] | None = None
        self._context_time: float = 0.0
        # (op, shard) -> [ops, keys, bytes] accumulated inside the open lane
        self._kv_pending: dict[tuple[str, str], list[int]] = {}

    # ------------------------------------------------------------------
    # span plumbing

    def _sampled(self, user_id: int, timestamp: float) -> bool:
        if self.sample_pct >= 100:
            return True
        return _stable_hash(user_id, timestamp) % 100 < self.sample_pct

    # ------------------------------------------------------------------
    # data-plane hooks (MicroBatchQueue / SessionStreamMixin / backends)

    def request_enqueued(self, request: Any) -> None:
        """A request entered the micro-batch queue (root span start)."""
        user_id = request.user_id
        start = float(request.timestamp)
        if self.sample_pct < 100 and not self._sampled(user_id, start):
            return
        row = [user_id, start, None, None, None, None, None, None, None]
        self._trees.append(row)
        self._by_request[id(request)] = row
        key = (user_id, start)
        fifo = self._session_fifo.get(key)
        if fifo is None:
            self._session_fifo[key] = [row]
        else:
            fifo.append(row)

    def begin_predict(self, batch: Iterable[Any], reference: float, completion: float) -> None:
        """A micro-batch flushed: open the batch span, stamp scoring times."""
        batch = list(batch)
        reference = float(reference)
        completion = float(completion)
        self._n_spans += 1
        span = [self._n_spans, 0, None, "predict_batch", "batch", reference, completion, "span",
                {"batch_size": len(batch), "kv_bytes": 0, "kv_ops": 0}]
        self._records.append(span)
        by_request = self._by_request
        for request in batch:
            row = by_request.get(id(request))
            if row is not None:
                row[_T_REF] = reference
                row[_T_COMP] = completion
        self._context = span
        self._context_time = reference

    def end_predict(self, batch: Iterable[Any], predictions: Iterable[Any]) -> None:
        """The batch scored: stamp per-request KV attribution, close the lane."""
        by_request = self._by_request
        for request, prediction in zip(batch, predictions):
            row = by_request.pop(id(request), None)
            if row is not None:
                row[_T_KV_LOOKUPS] = prediction.kv_lookups
                row[_T_KV_BYTES] = prediction.bytes_fetched
        self._close_context()

    def session_published(self, user_id: int, timestamp: float, fire_at: float) -> None:
        """A session window opened with its end-timer scheduled at ``fire_at``."""
        key = (user_id, float(timestamp))
        fifo = self._session_fifo.get(key)
        if not fifo:
            return  # shed, deferred-past-window, or unsampled request
        row = fifo.pop(0)
        if not fifo:
            del self._session_fifo[key]
        row[_T_FIRE] = float(fire_at)
        wave = self._wave_fifo.get(key)
        if wave is None:
            self._wave_fifo[key] = [row]
        else:
            wave.append(row)

    def begin_wave(self, entries: Iterable[tuple[int, float, float]], clock: float) -> None:
        """A timer wave delivered at ``clock``: entries are (user, ts, fire_at)."""
        entries = list(entries)
        clock = float(clock)
        wave_start = clock
        for _, _, fire_at in entries:
            fire_at = float(fire_at)
            if fire_at < wave_start:
                wave_start = fire_at
        self._n_spans += 1
        span = [self._n_spans, 0, None, "apply_wave", "batch", wave_start, clock, "span",
                {"wave_size": len(entries), "kv_bytes": 0, "kv_ops": 0}]
        self._records.append(span)
        wave_fifo = self._wave_fifo
        for user_id, timestamp, _ in entries:
            key = (user_id, float(timestamp))
            fifo = wave_fifo.get(key)
            if not fifo:
                continue
            row = fifo.pop(0)
            if not fifo:
                del wave_fifo[key]
            scheduled = row[_T_FIRE]
            row[_T_WAVE_END] = clock if clock > scheduled else scheduled
            row[_T_WAVE_AT] = clock
        self._context = span
        self._context_time = clock

    def end_wave(self) -> None:
        self._close_context()

    def kv_op(self, op: str, shard: str, n_keys: int, n_bytes: int) -> None:
        """A metered KV operation inside an open predict/wave lane.

        Simulated time does not advance inside a batch, so KV work carries
        no duration; per-call instants would stack at one timestamp while
        costing a span per operation on the hottest loop, so ops are
        accumulated per ``(op, shard)`` and flushed as one ``kv.<op>``
        instant per pair when the lane closes.  Bytes/op counts also
        accumulate onto the enclosing batch span's attributes.
        """
        if self._context is None:
            return  # warm-up / repair / shadow traffic outside any lane
        entry = self._kv_pending.get((op, shard))
        if entry is None:
            self._kv_pending[(op, shard)] = [1, n_keys, n_bytes]
        else:
            entry[0] += 1
            entry[1] += n_keys
            entry[2] += n_bytes

    def _close_context(self) -> None:
        """Flush the open lane's aggregated ``kv.*`` instants and close it."""
        context = self._context
        if context is not None and self._kv_pending:
            time = self._context_time
            parent_id = context[_ID]
            attrs = context[_ATTRS]
            for (op, shard), (ops, keys, n_bytes) in self._kv_pending.items():
                self._n_spans += 1
                self._records.append([self._n_spans, 0, parent_id, "kv." + op, "kv",
                                      time, time, "instant",
                                      {"shard": shard, "ops": ops, "keys": keys, "bytes": n_bytes}])
                attrs["kv_bytes"] += n_bytes
                attrs["kv_ops"] += ops
            self._kv_pending.clear()
        self._context = None

    # ------------------------------------------------------------------
    # control-plane hooks (admission / autoscaler / ring / rollout)

    def admission_event(self, kind: str, timestamp: float, **attrs: Any) -> None:
        """An admission decision (``shed`` / ``defer``) or health transition."""
        timestamp = float(timestamp)
        self._n_spans += 1
        self._records.append([self._n_spans, 0, None, "admission." + kind, "control",
                              timestamp, timestamp, "instant", attrs])

    def control_event(self, name: str, timestamp: float, **attrs: Any) -> None:
        """A named control-plane instant (autoscale tick, ring fault, rollout stage)."""
        timestamp = float(timestamp)
        self._n_spans += 1
        self._records.append([self._n_spans, 0, None, name, "control",
                              timestamp, timestamp, "instant", attrs])

    # ------------------------------------------------------------------
    # accessors / export

    def _tree_records(self) -> list[list[Any]]:
        """Synthesize raw span records for every sampled request tree.

        A tree's ``trace_id`` is its row index + 1; span ids continue
        after the eagerly-recorded batch/control records, assigned in row
        order, so a given set of recorded events always exports the same
        ids.  Partially-completed rows (a request still queued, or whose
        session has not fired) yield the subtree recorded so far.
        """
        out: list[list[Any]] = []
        next_id = self._n_spans
        for index, row in enumerate(self._trees):
            trace_id = index + 1
            root_id = next_id + 1
            children: list[tuple[str, str, float, float, dict[str, Any] | None]] = []
            end = row[_T_START]
            if row[_T_REF] is not None:
                children.append(("queue.wait", "queue", row[_T_START], row[_T_REF], None))
                attrs = None
                if row[_T_KV_LOOKUPS] is not None:
                    attrs = {"kv_lookups": int(row[_T_KV_LOOKUPS]),
                             "kv_bytes": int(row[_T_KV_BYTES])}
                children.append(("predict", "compute", row[_T_REF], row[_T_COMP], attrs))
                if row[_T_COMP] > end:
                    end = row[_T_COMP]
            if row[_T_FIRE] is not None:
                children.append(("session.window", "session", row[_T_START], row[_T_FIRE], None))
                if row[_T_FIRE] > end:
                    end = row[_T_FIRE]
            if row[_T_WAVE_END] is not None:
                children.append(("update.wave_wait", "update",
                                 row[_T_FIRE], row[_T_WAVE_END], None))
                children.append(("update.apply", "update",
                                 row[_T_WAVE_AT], row[_T_WAVE_AT], None))
                if row[_T_WAVE_END] > end:
                    end = row[_T_WAVE_END]
            out.append([root_id, trace_id, None, "request", "request",
                        row[_T_START], end, "span", {"user_id": row[_T_USER]}])
            next_id += 1
            for name, cat, start, stop, attrs in children:
                next_id += 1
                out.append([next_id, trace_id, root_id, name, cat, start, stop, "span", attrs])
        return out

    def _all_records(self) -> list[list[Any]]:
        return self._records + self._tree_records()

    def spans(self) -> list[Span]:
        """Materialize every recorded span (a fresh :class:`Span` view per
        call; request trees are synthesized from their compact rows)."""
        return [
            Span(rec[_ID], rec[_TRACE], rec[_PARENT], rec[_NAME], rec[_CAT],
                 rec[_START], rec[_END], rec[_KIND],
                 rec[_ATTRS] if rec[_ATTRS] is not None else {})
            for rec in self._all_records()
        ]

    def roots(self) -> list[Span]:
        return [span for span in self.spans() if span.name == "request"]

    def chrome_trace(self) -> dict[str, Any]:
        """Export the Chrome trace-event format (``chrome://tracing`` / Perfetto).

        Timestamps are re-based to the earliest span and scaled to
        microseconds; ``metadata.base_ts`` records the subtracted
        simulated-seconds origin so absolute times can be recovered.
        Control-plane instants land on thread lane 0, batch-lane spans on
        lane 1, and each request tree on its own ``1 + trace_id`` lane.
        """
        records = self._all_records()
        base = min((rec[_START] for rec in records), default=0.0)
        events: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
             "args": {"name": "serving-engine (simulated clock)"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
             "args": {"name": "control-plane"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "ts": 0,
             "args": {"name": "batch-lane"}},
        ]
        for rec in records:
            ts = round((rec[_START] - base) * 1e6, 3)
            args = {"span_id": rec[_ID], "trace_id": rec[_TRACE]}
            if rec[_ATTRS]:
                args.update(rec[_ATTRS])
            if rec[_PARENT] is not None:
                args["parent_id"] = rec[_PARENT]
            if rec[_CAT] == "control":
                tid = 0
            elif rec[_TRACE] == 0:
                tid = 1  # batch lane (predict_batch / apply_wave / kv.*)
            else:
                tid = 1 + rec[_TRACE]
            event: dict[str, Any] = {
                "name": rec[_NAME], "cat": rec[_CAT], "pid": 1, "tid": tid,
                "ts": ts, "args": args,
            }
            if rec[_KIND] == "instant":
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = round((rec[_END] - rec[_START]) * 1e6, 3)
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"clock": "simulated-seconds", "base_ts": base, "spans": len(records)},
        }


class _NullTracer(Tracer):
    """Disabled tracer: every hook is a no-op (same idiom as ``NULL_REGISTRY``).

    Call sites guard hot paths on ``tracer.enabled``, but unguarded calls
    are harmless — nothing is recorded and nothing is allocated.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sample_pct=100)

    def request_enqueued(self, request: Any) -> None:
        pass

    def begin_predict(self, batch: Iterable[Any], reference: float, completion: float) -> None:
        pass

    def end_predict(self, batch: Iterable[Any], predictions: Iterable[Any]) -> None:
        pass

    def session_published(self, user_id: int, timestamp: float, fire_at: float) -> None:
        pass

    def begin_wave(self, entries: Iterable[tuple[int, float, float]], clock: float) -> None:
        pass

    def end_wave(self) -> None:
        pass

    def kv_op(self, op: str, shard: str, n_keys: int, n_bytes: int) -> None:
        pass

    def admission_event(self, kind: str, timestamp: float, **attrs: Any) -> None:
        pass

    def control_event(self, name: str, timestamp: float, **attrs: Any) -> None:
        pass


#: Shared disabled tracer — the default everywhere ``tracer`` is optional.
NULL_TRACER = _NullTracer()


#: Critical-path arbitration: when child spans overlap, the request is
#: "really" waiting on the highest-priority one — a deferred update
#: dominates (the prediction is long since delivered but the state write
#: hasn't landed), then scoring, then queueing; the open session window
#: only explains time nothing else does.
_PRIORITY = {"update.wave_wait": 4, "predict": 3, "queue.wait": 2, "session.window": 1}

#: Span name -> latency-breakdown category.
_CATEGORY = {
    "queue.wait": "queue",
    "predict": "compute",
    "session.window": "session_window",
    "update.wave_wait": "update_defer",
}

#: Breakdown column order (``other`` = root time no child explains).
CATEGORIES = ("queue", "compute", "session_window", "update_defer", "other")


class TraceAnalyzer:
    """Per-request critical paths and the latency-breakdown table.

    The critical path of a request partitions its root interval into
    elementary segments; each segment is attributed to the
    highest-priority child span covering it (see ``_PRIORITY``), and
    uncovered segments to ``other`` — so the segment durations always
    sum to the root span's duration exactly (pinned in
    ``tests/test_tracing.py``).  KV work is an instant on the simulated
    clock (no duration), so the KV column of the breakdown is *bytes
    moved*, not seconds.
    """

    def __init__(self, spans: Iterable[Span]) -> None:
        self._spans = list(spans)
        self._children: dict[int, list[Span]] = {}
        for span in self._spans:
            if span.parent_id is not None:
                self._children.setdefault(span.parent_id, []).append(span)
        self._roots = [span for span in self._spans if span.name == "request"]

    @property
    def roots(self) -> list[Span]:
        return list(self._roots)

    def children(self, span: Span) -> list[Span]:
        return list(self._children.get(span.span_id, ()))

    def critical_path(self, root: Span) -> list[tuple[str, float, float]]:
        """``(span_name, start, end)`` segments partitioning the root interval."""
        ranked = [
            child for child in self._children.get(root.span_id, ())
            if child.name in _PRIORITY and child.end > child.start
        ]
        cuts = sorted({root.start, root.end, *(c.start for c in ranked), *(c.end for c in ranked)})
        segments: list[list[Any]] = []
        for low, high in zip(cuts, cuts[1:]):
            if high <= low:
                continue
            active = [c for c in ranked if c.start <= low and c.end >= high]
            name = max(active, key=lambda c: _PRIORITY[c.name]).name if active else "other"
            if segments and segments[-1][0] == name and segments[-1][2] == low:
                segments[-1][2] = high
            else:
                segments.append([name, low, high])
        return [(name, low, high) for name, low, high in segments]

    def breakdown(self, root: Span) -> dict[str, Any]:
        """One row of the latency-breakdown table for ``root``."""
        seconds = dict.fromkeys(CATEGORIES, 0.0)
        for name, low, high in self.critical_path(root):
            seconds[_CATEGORY.get(name, "other")] += high - low
        kv_bytes = kv_lookups = 0
        for child in self._children.get(root.span_id, ()):
            if child.name == "predict":
                kv_bytes += int(child.attrs.get("kv_bytes", 0))
                kv_lookups += int(child.attrs.get("kv_lookups", 0))
        return {
            "trace_id": root.trace_id,
            "user_id": root.attrs.get("user_id"),
            "start": root.start,
            "duration_s": root.duration,
            **{f"{category}_s": seconds[category] for category in CATEGORIES},
            "kv_bytes": kv_bytes,
            "kv_lookups": kv_lookups,
        }

    def table(self) -> list[dict[str, Any]]:
        """The full breakdown table, one row per traced request."""
        return [self.breakdown(root) for root in self._roots]

    def slowest(self) -> Span | None:
        """The traced request with the largest end-to-end duration."""
        if not self._roots:
            return None
        return max(self._roots, key=lambda root: (root.duration, -root.trace_id))

    def summary(self) -> dict[str, Any]:
        """Mean-per-request breakdown columns for experiment rows.

        Keys are ``trace_``-prefixed so they drop straight into a result
        row next to the meter-derived columns.
        """
        rows = self.table()
        count = len(rows)

        def _mean(key: str) -> float:
            return sum(row[key] for row in rows) / count if count else 0.0

        return {
            "trace_requests": count,
            "trace_mean_duration_s": round(_mean("duration_s"), 3),
            **{f"trace_{category}_s": round(_mean(f"{category}_s"), 3) for category in CATEGORIES},
            "trace_kv_bytes": round(_mean("kv_bytes"), 1),
        }


def validate_chrome_trace(trace: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` is well-formed Chrome trace JSON.

    Checks the subset of the format the viewers actually require: a
    ``traceEvents`` list whose entries carry ``name``/``ph``/``ts``/``pid``,
    complete (``X``) events a non-negative ``dur``, and instants a scope.
    Used by the artifact tests and the manifest runner's smoke checks.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace must carry a traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for field in ("name", "ph", "pid"):
            if field not in event:
                raise ValueError(f"traceEvents[{index}] is missing {field!r}")
        phase = event["ph"]
        if phase not in ("X", "i", "M"):
            raise ValueError(f"traceEvents[{index}] has unsupported phase {phase!r}")
        if phase != "M" and "ts" not in event:
            raise ValueError(f"traceEvents[{index}] is missing 'ts'")
        if phase == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                raise ValueError(f"traceEvents[{index}] needs a non-negative 'dur'")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"traceEvents[{index}] instant needs scope 's' in t/p/g")
