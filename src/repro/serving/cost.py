"""Serving cost model (Section 9, "Relative production resources").

The paper's production findings are about *relative* resource usage:

* the RNN model itself is ≈9.5x more computationally intensive per
  prediction than the GBDT model;
* but feature serving dominates — computing and fetching aggregation
  features costs about two orders of magnitude more than either model's
  execution, because every prediction needs ≈20 key-value lookups against
  per-user, per-context aggregation state;
* the RNN path replaces all of that with a single 512-byte hidden-state
  lookup, cutting the overall serving cost by roughly 10x.

This module expresses those relationships with an explicit, documented cost
model.  Model compute is estimated from operation counts (multiply-adds for
the networks, node traversals for the trees); feature serving is charged per
key-value lookup plus per byte fetched.  The absolute unit is arbitrary; the
benchmark reports the ratios, which is what the paper reports too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.pipeline import TabularFeaturizer
from ..ml.gbdt import GradientBoostedTrees
from ..models.rnn import RNNPrecomputeNetwork

__all__ = [
    "CostParameters",
    "ServingCostReport",
    "rnn_prediction_flops",
    "gbdt_prediction_flops",
    "estimate_serving_costs",
    "kv_traffic_cost",
    "registry_traffic_cost",
]


@dataclass(frozen=True)
class CostParameters:
    """Unit costs for the serving cost model.

    ``lookup_cost`` is the fixed cost of one key-value fetch (network round
    trip, serialization, index probe); ``byte_cost`` the marginal cost per
    byte fetched; ``flop_cost`` the cost of one model multiply-add executed
    in the prediction service.  The defaults encode the paper's observation
    that a remote feature fetch costs on the order of 10^2-10^3 model
    multiply-adds.
    """

    lookup_cost: float = 2000.0
    byte_cost: float = 1.0
    flop_cost: float = 0.01
    bytes_per_hidden_value: int = 4

    def __post_init__(self) -> None:
        if min(self.lookup_cost, self.byte_cost, self.flop_cost) < 0:
            raise ValueError("cost parameters must be non-negative")


@dataclass(frozen=True)
class ServingCostReport:
    """Per-prediction and per-user serving costs for one model family."""

    model_name: str
    kv_lookups_per_prediction: float
    bytes_fetched_per_prediction: float
    model_flops_per_prediction: float
    storage_bytes_per_user: float
    feature_serving_cost: float
    model_compute_cost: float

    @property
    def total_cost_per_prediction(self) -> float:
        return self.feature_serving_cost + self.model_compute_cost

    def as_row(self) -> dict[str, float | str]:
        return {
            "model": self.model_name,
            "kv_lookups": round(self.kv_lookups_per_prediction, 2),
            "bytes_fetched": round(self.bytes_fetched_per_prediction, 1),
            "model_flops": round(self.model_flops_per_prediction, 1),
            "storage_bytes_per_user": round(self.storage_bytes_per_user, 1),
            "feature_serving_cost": round(self.feature_serving_cost, 1),
            "model_compute_cost": round(self.model_compute_cost, 1),
            "total_cost": round(self.total_cost_per_prediction, 1),
        }


def kv_traffic_cost(stats, parameters: CostParameters | None = None) -> float:
    """Measured feature-serving cost of an observed KV traffic meter.

    Applies the same per-lookup and per-byte charges as the analytic model to
    counters actually recorded by a :class:`~repro.serving.kvstore.KVStats`
    (or a ``snapshot()`` dict of one), so replayed or load-generated traffic
    — including each shard of a sharded pool — rolls up into the same cost
    units :func:`estimate_serving_costs` reports.
    """
    params = parameters or CostParameters()
    snapshot = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)
    return params.lookup_cost * snapshot["gets"] + params.byte_cost * snapshot["bytes_read"]


def registry_traffic_cost(registry, store_name: str, parameters: CostParameters | None = None) -> float:
    """:func:`kv_traffic_cost` over a metrics registry's ``kv.*`` counters.

    Sums every ``kv.<store_name>...`` counter mirror — for a sharded pool
    the per-shard instruments (``kv.<name>/shard<i>.<field>``) roll up
    exactly like the legacy per-shard ``KVStats`` do, so this equals
    ``kv_traffic_cost(store.stats)`` bit for bit (property-tested).  The
    registry is the :class:`~repro.serving.telemetry.MetricsRegistry` the
    store was built with (``engine.metrics`` for facade-built pipelines).
    """
    params = parameters or CostParameters()
    # Two prefixes, not one: "kv.<name>." is the unsharded store's own
    # counters, "kv.<name>/" the shard pool's — and the "." / "/" boundary
    # keeps a store named "rnn" from absorbing a store named "rnn-b64".
    prefixes = (f"kv.{store_name}.", f"kv.{store_name}/")
    gets = sum(registry.sum_counters(prefix, "gets") for prefix in prefixes)
    bytes_read = sum(registry.sum_counters(prefix, "bytes_read") for prefix in prefixes)
    return params.lookup_cost * gets + params.byte_cost * bytes_read


def rnn_prediction_flops(network: RNNPrecomputeNetwork) -> float:
    """Multiply-add count for serving one RNN prediction (MLP head only).

    The hidden update runs asynchronously after the session ends, so the
    latency-critical path is the predictor; its cost is two multiply-adds per
    weight (multiply + accumulate) for the latent cross and the two MLP
    layers.
    """
    cfg = network.config
    hidden = cfg.hidden_size
    predict_in = cfg.predict_input_dim
    latent = predict_in * hidden if cfg.latent_cross else 0
    mlp = (predict_in + hidden) * cfg.mlp_hidden + cfg.mlp_hidden
    return 2.0 * (latent + mlp)


def rnn_update_flops(network: RNNPrecomputeNetwork) -> float:
    """Multiply-add count for one hidden-state update (the GRU/LSTM step)."""
    cfg = network.config
    hidden = cfg.hidden_size
    gates = 4 if cfg.cell == "lstm" else (3 if cfg.cell == "gru" else 1)
    return 2.0 * gates * hidden * (cfg.update_input_dim + hidden)


def gbdt_prediction_flops(model: GradientBoostedTrees, featurizer: TabularFeaturizer) -> float:
    """Comparison count for serving one GBDT prediction.

    Each tree costs roughly its depth in comparisons; assembling the feature
    vector costs roughly one operation per feature.  (This is deliberately
    generous to the GBDT: the paper measured the RNN at ≈9.5x the model
    compute, and the conclusion — that model compute is not the dominant
    serving cost — does not depend on the exact constant.)
    """
    depth = model.config.max_depth
    tree_cost = sum(min(depth, max(1, tree.n_nodes // 2)) for tree in model.trees)
    return float(tree_cost + featurizer.n_features)


def estimate_serving_costs(
    network: RNNPrecomputeNetwork,
    gbdt: GradientBoostedTrees,
    featurizer: TabularFeaturizer,
    *,
    parameters: CostParameters | None = None,
    gbdt_bytes_per_lookup: float = 64.0,
    gbdt_keys_per_user: float | None = None,
    quantized_hidden: bool = False,
) -> dict[str, ServingCostReport]:
    """Side-by-side serving cost estimates for the RNN and GBDT paths."""
    params = parameters or CostParameters()

    hidden_bytes = network.state_size * (1 if quantized_hidden else params.bytes_per_hidden_value)
    rnn_report = ServingCostReport(
        model_name="rnn",
        kv_lookups_per_prediction=1.0,
        bytes_fetched_per_prediction=float(hidden_bytes),
        model_flops_per_prediction=rnn_prediction_flops(network),
        storage_bytes_per_user=float(hidden_bytes + 8),
        feature_serving_cost=params.lookup_cost + params.byte_cost * hidden_bytes,
        model_compute_cost=params.flop_cost * rnn_prediction_flops(network),
    )

    lookups = float(featurizer.n_lookup_groups)
    bytes_fetched = lookups * gbdt_bytes_per_lookup
    keys_per_user = gbdt_keys_per_user if gbdt_keys_per_user is not None else lookups * 8.0
    gbdt_report = ServingCostReport(
        model_name="gbdt",
        kv_lookups_per_prediction=lookups,
        bytes_fetched_per_prediction=bytes_fetched,
        model_flops_per_prediction=gbdt_prediction_flops(gbdt, featurizer),
        storage_bytes_per_user=float(keys_per_user * gbdt_bytes_per_lookup),
        feature_serving_cost=params.lookup_cost * lookups + params.byte_cost * bytes_fetched,
        model_compute_cost=params.flop_cost * gbdt_prediction_flops(gbdt, featurizer),
    )
    return {"rnn": rnn_report, "gbdt": gbdt_report}
