"""Training and inference loops for the recurrent model (Section 7).

The paper trains with Adam (lr 1e-3), minibatches of 10 users, loss averaged
over every prediction/label pair inside the minibatch's loss window, and one
epoch for the large datasets versus eight for MPU.  Two minibatch evaluation
strategies are provided:

* ``"padded"`` — sequences in a minibatch are padded to a common length and
  stepped together with masking.  This is the vectorisation-friendly strategy
  (NumPy's analogue of batched tensor ops).
* ``"per_user"`` — each user's sequence is evaluated independently and
  gradients are accumulated before the optimiser step, mirroring the paper's
  custom thread-per-user parallelism (Section 7.1).  The training-throughput
  benchmark compares the two.

The trainer records a training curve of (sessions processed, minibatch log
loss) pairs, which reproduces Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..features.sequence import UserSequence
from ..nn import functional as F
from .rnn import PredictionSpec, RNNPrecomputeNetwork

__all__ = ["RNNTrainerConfig", "TrainingCurvePoint", "RNNTrainer"]


@dataclass(frozen=True)
class RNNTrainerConfig:
    """Optimisation hyper-parameters for the RNN trainer."""

    epochs: int = 1
    batch_users: int = 10
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    strategy: str = "padded"
    sort_by_length: bool = True
    shuffle: bool = True
    early_stopping_patience: int | None = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_users <= 0:
            raise ValueError("epochs and batch_users must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.strategy not in ("padded", "per_user"):
            raise ValueError("strategy must be 'padded' or 'per_user'")


@dataclass(frozen=True)
class TrainingCurvePoint:
    """One minibatch on the Figure 4 training curve."""

    sessions_processed: int
    loss: float
    epoch: int


class RNNTrainer:
    """Runs minibatch training and batched inference for the RNN network."""

    def __init__(self, config: RNNTrainerConfig | None = None, **overrides) -> None:
        if config is None:
            config = RNNTrainerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.curve: list[TrainingCurvePoint] = []
        self.validation_losses: list[float] = []

    # ------------------------------------------------------------------
    # Forward pass over a batch of users
    # ------------------------------------------------------------------
    def _forward_batch(
        self,
        network: RNNPrecomputeNetwork,
        sequences: list[UserSequence],
        specs: list[PredictionSpec],
    ) -> tuple[nn.Tensor, np.ndarray, list[int]] | None:
        """Run update+predict for a batch; returns (logits, labels, per-user counts)."""
        batch_size = len(sequences)
        max_len = max((len(s) for s in sequences), default=0)
        update_dim = network.config.update_input_dim
        update_inputs = np.zeros((batch_size, max_len, update_dim), dtype=np.float64)
        valid = np.zeros((batch_size, max_len, 1), dtype=np.float64)
        for b, sequence in enumerate(sequences):
            n = len(sequence)
            if n == 0:
                continue
            update_inputs[b, :n, :] = network.build_update_inputs(
                sequence.features, sequence.accesses, sequence.delta_buckets
            )
            valid[b, :n, 0] = 1.0

        states = [network.initial_state(batch_size)]
        for t in range(max_len):
            x_t = nn.Tensor(update_inputs[:, t, :])
            mask = nn.Tensor(valid[:, t, :])
            updated = network.update_hidden(states[-1], x_t)
            states.append(updated * mask + states[-1] * (1.0 - mask))
        stacked = nn.stack(states, axis=0)  # (max_len + 1, batch, state)

        k_indices: list[np.ndarray] = []
        batch_indices: list[np.ndarray] = []
        predict_inputs: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        counts: list[int] = []
        for b, spec in enumerate(specs):
            counts.append(len(spec))
            if len(spec) == 0:
                continue
            k_indices.append(spec.k_index)
            batch_indices.append(np.full(len(spec), b, dtype=np.int64))
            predict_inputs.append(network.build_predict_inputs(spec.features, spec.gap_buckets))
            labels.append(spec.labels)
        if not k_indices:
            return None
        k_all = np.concatenate(k_indices)
        b_all = np.concatenate(batch_indices)
        selected = stacked[(k_all, b_all)]
        logits = network.predict_logits(selected, nn.Tensor(np.concatenate(predict_inputs, axis=0)))
        return logits.reshape(-1), np.concatenate(labels), counts

    # ------------------------------------------------------------------
    def _make_batches(self, order: np.ndarray, lengths: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        cfg = self.config
        if cfg.sort_by_length:
            order = order[np.argsort(lengths[order], kind="stable")]
        batches = [order[i : i + cfg.batch_users] for i in range(0, len(order), cfg.batch_users)]
        if cfg.shuffle:
            rng.shuffle(batches)
        return batches

    # ------------------------------------------------------------------
    def train(
        self,
        network: RNNPrecomputeNetwork,
        sequences: list[UserSequence],
        specs: list[PredictionSpec],
        validation: tuple[list[UserSequence], list[PredictionSpec]] | None = None,
    ) -> list[TrainingCurvePoint]:
        """Train in place; returns the (Figure 4) training curve.

        When ``validation`` sequences/specs are given, validation log loss is
        evaluated after every epoch and the parameters from the best epoch are
        restored at the end (early stopping after
        ``early_stopping_patience`` epochs without improvement).  The paper
        does not need this at production scale, but with small synthetic
        populations the RNN can otherwise overfit its training users.
        """
        if len(sequences) != len(specs):
            raise ValueError("sequences and specs must align")
        if not sequences:
            raise ValueError("no training sequences provided")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = nn.Adam(network.parameters(), lr=cfg.learning_rate)
        lengths = np.asarray([len(s) for s in sequences])
        self.curve = []
        self.validation_losses: list[float] = []
        sessions_processed = 0
        best_loss = np.inf
        best_state: dict[str, np.ndarray] | None = None
        epochs_since_best = 0

        network.train()
        for epoch in range(cfg.epochs):
            order = np.arange(len(sequences))
            batches = self._make_batches(order, lengths, rng)
            for batch in batches:
                batch_sequences = [sequences[i] for i in batch]
                batch_specs = [specs[i] for i in batch]
                optimizer.zero_grad()
                if cfg.strategy == "padded":
                    forward = self._forward_batch(network, batch_sequences, batch_specs)
                    if forward is None:
                        continue
                    logits, labels, _ = forward
                    loss = F.binary_cross_entropy_with_logits(logits, labels)
                    loss.backward()
                    batch_loss = loss.item()
                else:
                    batch_loss = self._per_user_backward(network, batch_sequences, batch_specs)
                    if batch_loss is None:
                        continue
                if cfg.grad_clip > 0:
                    nn.clip_grad_norm_(network.parameters(), cfg.grad_clip)
                optimizer.step()
                sessions_processed += int(sum(len(s) for s in batch_sequences))
                self.curve.append(
                    TrainingCurvePoint(sessions_processed=sessions_processed, loss=float(batch_loss), epoch=epoch)
                )
            if validation is not None:
                validation_loss = self.evaluate_loss(network, validation[0], validation[1])
                self.validation_losses.append(validation_loss)
                network.train()
                if validation_loss < best_loss - 1e-5:
                    best_loss = validation_loss
                    best_state = network.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                    if (
                        cfg.early_stopping_patience is not None
                        and epochs_since_best >= cfg.early_stopping_patience
                    ):
                        break
        if best_state is not None:
            network.load_state_dict(best_state)
        network.eval()
        return self.curve

    # ------------------------------------------------------------------
    def evaluate_loss(
        self,
        network: RNNPrecomputeNetwork,
        sequences: list[UserSequence],
        specs: list[PredictionSpec],
    ) -> float:
        """Mean log loss over all predictions in the given sequences/specs."""
        probabilities = np.concatenate(self.predict(network, sequences, specs)) if sequences else np.zeros(0)
        labels = np.concatenate([spec.labels for spec in specs]) if specs else np.zeros(0)
        if labels.size == 0:
            return float("nan")
        clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
        return float(-(labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped)).mean())

    def _per_user_backward(
        self,
        network: RNNPrecomputeNetwork,
        sequences: list[UserSequence],
        specs: list[PredictionSpec],
    ) -> float | None:
        """Accumulate gradients user by user (Section 7.1's parallelism model)."""
        total_predictions = int(sum(len(spec) for spec in specs))
        if total_predictions == 0:
            return None
        weighted_loss = 0.0
        for sequence, spec in zip(sequences, specs):
            if len(spec) == 0:
                continue
            forward = self._forward_batch(network, [sequence], [spec])
            if forward is None:
                continue
            logits, labels, _ = forward
            user_loss = F.binary_cross_entropy_with_logits(logits, labels)
            weight = len(spec) / total_predictions
            (user_loss * weight).backward()
            weighted_loss += user_loss.item() * weight
        return weighted_loss

    # ------------------------------------------------------------------
    def predict(
        self,
        network: RNNPrecomputeNetwork,
        sequences: list[UserSequence],
        specs: list[PredictionSpec],
        batch_users: int | None = None,
    ) -> list[np.ndarray]:
        """Per-user probability arrays, in the order of the input sequences."""
        if len(sequences) != len(specs):
            raise ValueError("sequences and specs must align")
        batch_users = batch_users or self.config.batch_users
        was_training = network.training
        network.eval()
        outputs: list[np.ndarray] = [np.zeros(0)] * len(sequences)
        with nn.no_grad():
            for start in range(0, len(sequences), batch_users):
                indices = list(range(start, min(start + batch_users, len(sequences))))
                batch_sequences = [sequences[i] for i in indices]
                batch_specs = [specs[i] for i in indices]
                forward = self._forward_batch(network, batch_sequences, batch_specs)
                if forward is None:
                    for i in indices:
                        outputs[i] = np.zeros(0)
                    continue
                logits, _, counts = forward
                probabilities = 1.0 / (1.0 + np.exp(-logits.numpy()))
                cursor = 0
                for position, i in enumerate(indices):
                    count = counts[position]
                    outputs[i] = probabilities[cursor : cursor + count]
                    cursor += count
        if was_training:
            network.train()
        return outputs
