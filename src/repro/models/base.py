"""Common interface for access-probability models.

Every model in the paper — the percentage baseline, logistic regression,
GBDT and the RNN — answers the same question: *given a user's access log and
the current state, what is the probability that the activity will be accessed
in this session / peak window?*  They are therefore exposed behind one
interface, :class:`AccessProbabilityModel`, parameterised by a
:class:`TaskSpec` describing which of the paper's two prediction problems is
being solved (Section 3.2 session access, or Section 3.2.1 timeshifted peak
access) and which day ranges are used for training and evaluation
(Section 8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..data.schema import SECONDS_PER_HOUR, Dataset
from ..data.tasks import Example, peak_window_examples, session_examples

__all__ = ["TaskSpec", "PredictionResult", "AccessProbabilityModel", "flatten_examples"]


@dataclass(frozen=True)
class TaskSpec:
    """Which prediction problem is being solved, and its evaluation protocol.

    ``kind`` is ``"session"`` or ``"peak"``.  Tabular models train on
    examples from the most recent ``train_days`` so aggregation features have
    warm-up history (Section 5.3); the RNN computes its loss over the last
    ``rnn_loss_days`` (Section 6.3); all models are evaluated on the final
    ``eval_days`` (Section 8).  ``lead_seconds`` is how far before the peak
    window the timeshifted prediction is made.
    """

    kind: str = "session"
    train_days: int = 7
    rnn_loss_days: int = 21
    eval_days: int = 7
    lead_seconds: int = 6 * SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        if self.kind not in ("session", "peak"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        for name in ("train_days", "rnn_loss_days", "eval_days"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    def examples_for_last_days(self, dataset: Dataset, days: int) -> dict[int, list[Example]]:
        """Examples whose prediction time falls in the trailing ``days`` days."""
        days = min(days, dataset.n_days)
        boundary = dataset.day_boundary(days)
        if self.kind == "session":
            return session_examples(dataset, start_time=boundary)
        first_day = dataset.n_days - days
        return peak_window_examples(dataset, lead_seconds=self.lead_seconds, first_day=first_day)

    def train_examples(self, dataset: Dataset) -> dict[int, list[Example]]:
        """Training examples for tabular models (last ``train_days`` days)."""
        return self.examples_for_last_days(dataset, self.train_days)

    def loss_examples(self, dataset: Dataset) -> dict[int, list[Example]]:
        """Examples the RNN loss is computed over (last ``rnn_loss_days`` days)."""
        return self.examples_for_last_days(dataset, self.rnn_loss_days)

    def eval_examples(self, dataset: Dataset) -> dict[int, list[Example]]:
        """Held-out evaluation examples (last ``eval_days`` days)."""
        return self.examples_for_last_days(dataset, self.eval_days)


def flatten_examples(examples_by_user: dict[int, list[Example]]) -> list[Example]:
    """Flatten grouped examples into a single deterministic ordering."""
    flat: list[Example] = []
    for _, examples in examples_by_user.items():
        flat.extend(examples)
    return flat


@dataclass
class PredictionResult:
    """Aligned scores, labels and bookkeeping for a set of examples."""

    y_true: np.ndarray
    y_score: np.ndarray
    user_ids: np.ndarray
    prediction_times: np.ndarray
    model_name: str = ""

    def __post_init__(self) -> None:
        n = len(self.y_true)
        if not (len(self.y_score) == len(self.user_ids) == len(self.prediction_times) == n):
            raise ValueError("misaligned prediction result arrays")

    def __len__(self) -> int:
        return int(len(self.y_true))

    @classmethod
    def from_examples(
        cls, examples_by_user: dict[int, list[Example]], scores: np.ndarray, model_name: str = ""
    ) -> "PredictionResult":
        flat = flatten_examples(examples_by_user)
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        if len(flat) != scores.shape[0]:
            raise ValueError(f"expected {len(flat)} scores, got {scores.shape[0]}")
        return cls(
            y_true=np.asarray([e.label for e in flat], dtype=np.float64),
            y_score=scores,
            user_ids=np.asarray([e.user_id for e in flat], dtype=np.int64),
            prediction_times=np.asarray([e.prediction_time for e in flat], dtype=np.int64),
            model_name=model_name,
        )

    def merge(self, other: "PredictionResult") -> "PredictionResult":
        """Concatenate two result sets (used to combine cross-validation folds)."""
        return PredictionResult(
            y_true=np.concatenate([self.y_true, other.y_true]),
            y_score=np.concatenate([self.y_score, other.y_score]),
            user_ids=np.concatenate([self.user_ids, other.user_ids]),
            prediction_times=np.concatenate([self.prediction_times, other.prediction_times]),
            model_name=self.model_name or other.model_name,
        )


class AccessProbabilityModel(ABC):
    """Interface shared by all access-probability models."""

    name: str = "model"

    @abstractmethod
    def fit(self, train: Dataset, task: TaskSpec) -> "AccessProbabilityModel":
        """Train the model on the given dataset for the given task."""

    @abstractmethod
    def predict_examples(
        self, dataset: Dataset, examples_by_user: dict[int, list[Example]]
    ) -> np.ndarray:
        """Scores aligned with :func:`flatten_examples` of ``examples_by_user``."""

    # ------------------------------------------------------------------
    def evaluate(self, dataset: Dataset, task: TaskSpec) -> PredictionResult:
        """Convenience: score the task's evaluation examples on ``dataset``."""
        examples = task.eval_examples(dataset)
        scores = self.predict_examples(dataset, examples)
        return PredictionResult.from_examples(examples, scores, model_name=self.name)
