"""Feature-engineered tabular models: logistic regression and GBDT (Sections 5.3-5.4).

Both wrap the :class:`~repro.features.pipeline.TabularFeaturizer` around a
classical estimator from :mod:`repro.ml`:

* :class:`LogisticRegressionModel` — one-hot encodes the time features and
  log-bucketed elapsed features (Section 5.3) before fitting an
  L2-regularised logistic regression.
* :class:`GBDTModel` — keeps ordinal encodings for time and elapsed features
  (Section 5.4), holds out 10% of training users as a validation set, and
  searches tree depths exhaustively to minimise validation log loss.

The feature configuration is exposed so the Table 5 ablation (context only /
+elapsed / +aggregations) can reuse the same classes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..data.schema import Dataset
from ..data.splits import validation_split
from ..data.tasks import Example
from ..features import FeatureConfig, TabularFeaturizer
from ..ml import GBDTConfig, GradientBoostedTrees, LogisticRegression, LogisticRegressionConfig
from .base import AccessProbabilityModel, TaskSpec

__all__ = ["LogisticRegressionModel", "GBDTModel"]


class _TabularModelBase(AccessProbabilityModel):
    """Shared fit/predict plumbing for featurizer + estimator models."""

    def __init__(self, feature_config: FeatureConfig) -> None:
        self.feature_config = feature_config
        self.featurizer: TabularFeaturizer | None = None
        self._task: TaskSpec | None = None

    # Subclasses implement the estimator-specific parts.
    def _fit_estimator(self, train: Dataset, task: TaskSpec) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _estimator_scores(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def fit(self, train: Dataset, task: TaskSpec) -> "_TabularModelBase":
        self._task = task
        self.featurizer = TabularFeaturizer(train.schema, self.feature_config)
        self._fit_estimator(train, task)
        return self

    def predict_examples(self, dataset: Dataset, examples_by_user: dict[int, list[Example]]) -> np.ndarray:
        if self.featurizer is None:
            raise RuntimeError("model is not fitted")
        data = self.featurizer.transform(dataset, examples_by_user)
        if len(data) == 0:
            return np.zeros(0)
        return self._estimator_scores(data.X)

    @property
    def n_lookup_groups(self) -> int:
        """Aggregation groups the serving layer must fetch per prediction."""
        if self.featurizer is None:
            raise RuntimeError("model is not fitted")
        return self.featurizer.n_lookup_groups


class LogisticRegressionModel(_TabularModelBase):
    """Logistic regression on one-hot engineered features (Section 5.3)."""

    name = "lr"

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        estimator_config: LogisticRegressionConfig | None = None,
    ) -> None:
        config = feature_config or FeatureConfig(one_hot_time=True, one_hot_elapsed=True)
        if not config.one_hot_elapsed:
            # Section 5.3 bucketises and one-hot encodes elapsed features for LR.
            config = replace(config, one_hot_elapsed=True)
        super().__init__(config)
        self.estimator_config = estimator_config or LogisticRegressionConfig()
        self.estimator: LogisticRegression | None = None

    def _fit_estimator(self, train: Dataset, task: TaskSpec) -> None:
        assert self.featurizer is not None
        data = self.featurizer.transform(train, task.train_examples(train))
        if len(data) == 0:
            raise ValueError("no training examples were produced")
        self.estimator = LogisticRegression(self.estimator_config).fit(data.X, data.y)

    def _estimator_scores(self, X: np.ndarray) -> np.ndarray:
        assert self.estimator is not None
        return self.estimator.predict_proba(X)


class GBDTModel(_TabularModelBase):
    """Gradient boosted decision trees on engineered features (Section 5.4)."""

    name = "gbdt"

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        gbdt_config: GBDTConfig | None = None,
        depths: tuple[int, ...] = (2, 3, 4, 5, 6),
        validation_fraction: float = 0.1,
    ) -> None:
        super().__init__(feature_config or FeatureConfig(one_hot_time=False, one_hot_elapsed=False))
        self.gbdt_config = gbdt_config or GBDTConfig()
        self.depths = depths
        self.validation_fraction = validation_fraction
        self.estimator: GradientBoostedTrees | None = None
        self.best_depth_: int | None = None
        self.depth_search_losses_: dict[int, float] = {}

    def _fit_estimator(self, train: Dataset, task: TaskSpec) -> None:
        assert self.featurizer is not None
        split = validation_split(train, validation_fraction=self.validation_fraction, seed=self.gbdt_config.seed)
        train_data = self.featurizer.transform(split.train, task.train_examples(split.train))
        valid_data = self.featurizer.transform(split.test, task.train_examples(split.test))
        if len(train_data) == 0:
            raise ValueError("no training examples were produced")
        if len(valid_data) == 0 or valid_data.y.sum() == 0:
            # Degenerate validation split (tiny datasets): fall back to a single fit.
            self.estimator = GradientBoostedTrees(self.gbdt_config).fit(train_data.X, train_data.y)
            self.best_depth_ = self.gbdt_config.max_depth
            self.depth_search_losses_ = {}
            return
        model, best_depth, losses = GradientBoostedTrees.fit_with_depth_search(
            train_data.X,
            train_data.y,
            valid_data.X,
            valid_data.y,
            depths=self.depths,
            config=self.gbdt_config,
        )
        self.estimator = model
        self.best_depth_ = best_depth
        self.depth_search_losses_ = losses

    def _estimator_scores(self, X: np.ndarray) -> np.ndarray:
        assert self.estimator is not None
        return self.estimator.predict_proba(X)
