"""The recurrent access-prediction network (Section 6 / Figure 3).

The model is split into the two functions the paper requires for correct
handling of the update lag δ:

* ``RNN_update`` — a recurrent cell (GRU by default; LSTM and tanh are
  available for the Section 6.2 ablation) that consumes
  ``[f_i ; T(Δt_i) ; A_i]`` at the *end* of session ``i`` and produces the
  next hidden state ``h_i``.
* ``RNN_predict`` — a feed-forward head that consumes the latest *usable*
  hidden state ``h_k`` (where ``t_k < t_i − δ``) together with the current
  prediction inputs ``[f_i ; T(t_i − t_k)]`` and outputs ``P(A_i)``.  The
  hidden state is modulated by a latent cross
  ``h_k ∘ (1 + L([f_i ; T(t_i − t_k)]))`` (Beutel et al., 2018) before the
  MLP, which Section 6.2 reports as a meaningful improvement.

For the timeshifted task the prediction input is just ``[T(start_d − t_k)]``
— no session context exists at prediction time (Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.rnn import make_cell

__all__ = ["RNNNetworkConfig", "RNNPrecomputeNetwork", "encode_delta_buckets", "PredictionSpec", "build_prediction_spec"]


def encode_delta_buckets(buckets: np.ndarray, n_buckets: int) -> np.ndarray:
    """One-hot encode bucketed time gaps (the ``T(·)`` inputs of Section 6.1)."""
    buckets = np.asarray(buckets, dtype=np.int64).reshape(-1)
    if buckets.size and (buckets.min() < 0 or buckets.max() >= n_buckets):
        raise ValueError(f"delta buckets out of range [0, {n_buckets})")
    encoded = np.zeros((buckets.size, n_buckets), dtype=np.float64)
    encoded[np.arange(buckets.size), buckets] = 1.0
    return encoded


@dataclass(frozen=True)
class RNNNetworkConfig:
    """Architecture hyper-parameters (paper defaults: GRU, 128 hidden, 128-wide MLP)."""

    feature_dim: int = 0
    hidden_size: int = 48
    mlp_hidden: int = 64
    cell: str = "gru"
    dropout: float = 0.2
    latent_cross: bool = True
    n_delta_buckets: int = 50
    predict_uses_context: bool = True

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.mlp_hidden <= 0:
            raise ValueError("hidden_size and mlp_hidden must be positive")
        if self.feature_dim < 0:
            raise ValueError("feature_dim must be non-negative")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @property
    def update_input_dim(self) -> int:
        """Width of the ``RNN_update`` input ``[f_i ; T(Δt_i) ; A_i]``."""
        return self.feature_dim + self.n_delta_buckets + 1

    @property
    def predict_input_dim(self) -> int:
        """Width of the ``RNN_predict`` input ``[f_i ; T(t_i − t_k)]`` (or just the gap)."""
        context = self.feature_dim if self.predict_uses_context else 0
        return context + self.n_delta_buckets


class RNNPrecomputeNetwork(nn.Module):
    """GRU/LSTM/tanh hidden-state updater plus latent-cross MLP predictor."""

    def __init__(self, config: RNNNetworkConfig, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config
        self.cell = make_cell(config.cell, config.update_input_dim, config.hidden_size, rng=rng)
        predict_in = config.predict_input_dim
        if config.latent_cross:
            self.latent = nn.Linear(predict_in, config.hidden_size, rng=rng)
        else:
            self.latent = None
        self.w1 = nn.Linear(predict_in + config.hidden_size, config.mlp_hidden, rng=rng)
        self.w2 = nn.Linear(config.mlp_hidden, 1, rng=rng)
        self.dropout = nn.Dropout(config.dropout, rng=rng)

    # ------------------------------------------------------------------
    @property
    def state_size(self) -> int:
        """Width of the persisted per-user hidden state (what serving stores)."""
        return self.cell.state_size

    def initial_state(self, batch_size: int = 1) -> nn.Tensor:
        return self.cell.initial_state(batch_size)

    # ------------------------------------------------------------------
    def update_hidden(self, state: nn.Tensor, update_inputs: nn.Tensor) -> nn.Tensor:
        """One ``RNN_update`` step: consume ``[f_i ; T(Δt_i) ; A_i]`` at session end."""
        return self.cell(update_inputs, state)

    def _hidden_part(self, state: nn.Tensor) -> nn.Tensor:
        return self.cell.hidden_slice(state)

    def predict_logits(self, state: nn.Tensor, predict_inputs: nn.Tensor) -> nn.Tensor:
        """``RNN_predict``: logits of ``P(A)`` from ``h_k`` and the prediction inputs."""
        hidden = self._hidden_part(state)
        if self.latent is not None:
            hidden = hidden * (self.latent(predict_inputs) + 1.0)
        mlp_input = nn.concat([hidden, predict_inputs], axis=1)
        activated = self.dropout(self.w1(mlp_input)).relu()
        return self.w2(activated)

    def predict_proba(self, state: nn.Tensor, predict_inputs: nn.Tensor) -> nn.Tensor:
        return self.predict_logits(state, predict_inputs).sigmoid()

    # ------------------------------------------------------------------
    # Batched eval-time inference (plain NumPy; the serving hot path).
    # ------------------------------------------------------------------
    def update_hidden_batch(self, states: np.ndarray, update_inputs: np.ndarray) -> np.ndarray:
        """Vectorized ``RNN_update`` over ``[B, state]`` / ``[B, input]`` stacks.

        Same arithmetic as :meth:`update_hidden` (to floating-point identity)
        but without autograd bookkeeping; serving uses it to advance many
        users' hidden states with a single set of matmuls.
        """
        states = np.asarray(states, dtype=np.float64)
        update_inputs = np.asarray(update_inputs, dtype=np.float64)
        return nn.inference.cell_step(self.cell, update_inputs, states)

    def predict_logits_batch(self, states: np.ndarray, predict_inputs: np.ndarray) -> np.ndarray:
        """Vectorized eval-time ``RNN_predict`` logits over stacked states.

        Dropout is an identity at evaluation; serving always runs frozen
        networks, so this path refuses to emulate training-mode stochasticity.
        """
        if self.training and self.config.dropout > 0.0:
            raise RuntimeError("batched inference requires the network to be in eval() mode")
        states = np.asarray(states, dtype=np.float64)
        predict_inputs = np.asarray(predict_inputs, dtype=np.float64)
        hidden = self.cell.hidden_slice(states)
        if self.latent is not None:
            hidden = hidden * (
                nn.inference.linear(predict_inputs, self.latent.weight.data, self.latent.bias.data) + 1.0
            )
        mlp_input = np.concatenate([hidden, predict_inputs], axis=1)
        activated = nn.inference.relu(
            nn.inference.linear(mlp_input, self.w1.weight.data, self.w1.bias.data)
        )
        return nn.inference.linear(activated, self.w2.weight.data, self.w2.bias.data)

    def predict_proba_batch(self, states: np.ndarray, predict_inputs: np.ndarray) -> np.ndarray:
        """Vectorized eval-time ``P(A)`` as a flat ``[B]`` probability array."""
        return nn.inference.sigmoid(self.predict_logits_batch(states, predict_inputs)).reshape(-1)

    # ------------------------------------------------------------------
    # Input assembly helpers (plain NumPy; no gradients flow through these).
    # ------------------------------------------------------------------
    def build_update_inputs(self, features: np.ndarray, accesses: np.ndarray, delta_buckets: np.ndarray) -> np.ndarray:
        """Assemble ``[f_i ; T(Δt_i) ; A_i]`` rows for a whole sequence."""
        features = np.asarray(features, dtype=np.float64)
        accesses = np.asarray(accesses, dtype=np.float64).reshape(-1, 1)
        encoded = encode_delta_buckets(delta_buckets, self.config.n_delta_buckets)
        if features.shape[0] != accesses.shape[0] or features.shape[0] != encoded.shape[0]:
            raise ValueError("misaligned update input arrays")
        if features.shape[1] != self.config.feature_dim:
            raise ValueError(
                f"feature width {features.shape[1]} does not match configured {self.config.feature_dim}"
            )
        return np.concatenate([features, encoded, accesses], axis=1)

    def build_predict_inputs(self, features: np.ndarray | None, gap_buckets: np.ndarray) -> np.ndarray:
        """Assemble ``[f_i ; T(t_i − t_k)]`` rows (or just the gap for timeshift)."""
        encoded = encode_delta_buckets(gap_buckets, self.config.n_delta_buckets)
        if not self.config.predict_uses_context:
            return encoded
        if features is None:
            raise ValueError("this network expects context features at prediction time")
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != encoded.shape[0]:
            raise ValueError("misaligned prediction input arrays")
        return np.concatenate([features, encoded], axis=1)


@dataclass
class PredictionSpec:
    """Everything needed to score a set of predictions against one user's sequence.

    ``k_index[j]`` is the index of the latest *usable* hidden state for
    prediction ``j`` (0 means "no usable history", i.e. ``h_0 = 0``);
    ``gap_buckets[j]`` is ``T(t_j − t_k)`` (bucket 0 when ``k = 0``);
    ``features`` holds the current-session context rows or ``None`` for the
    timeshifted task; ``labels`` are the ground-truth access flags.
    """

    k_index: np.ndarray
    gap_buckets: np.ndarray
    features: np.ndarray | None
    labels: np.ndarray
    prediction_times: np.ndarray

    def __post_init__(self) -> None:
        n = self.k_index.shape[0]
        aligned = (
            self.gap_buckets.shape[0] == n
            and self.labels.shape[0] == n
            and self.prediction_times.shape[0] == n
            and (self.features is None or self.features.shape[0] == n)
        )
        if not aligned:
            raise ValueError("misaligned prediction spec arrays")

    def __len__(self) -> int:
        return int(self.k_index.shape[0])


def build_prediction_spec(
    sequence_timestamps: np.ndarray,
    prediction_times: np.ndarray,
    labels: np.ndarray,
    features: np.ndarray | None,
    update_lag: int,
    n_delta_buckets: int,
) -> PredictionSpec:
    """Compute ``k`` indices and gap buckets for a set of predictions.

    Implements the paper's rule: ``k`` is the largest index such that
    ``t_k < t − δ``; if none exists, ``k = 0`` and the gap is treated as 0.
    """
    from ..features.bucketing import log_bucket

    sequence_timestamps = np.asarray(sequence_timestamps, dtype=np.int64)
    prediction_times = np.asarray(prediction_times, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if update_lag < 0:
        raise ValueError("update_lag must be non-negative")

    k_index = np.searchsorted(sequence_timestamps, prediction_times - update_lag, side="left")
    gaps = np.zeros(prediction_times.shape[0], dtype=np.float64)
    has_history = k_index > 0
    if has_history.any():
        gaps[has_history] = prediction_times[has_history] - sequence_timestamps[k_index[has_history] - 1]
    gap_buckets = np.asarray(log_bucket(gaps, n_buckets=n_delta_buckets), dtype=np.int64).reshape(-1)
    return PredictionSpec(
        k_index=k_index.astype(np.int64),
        gap_buckets=gap_buckets,
        features=None if features is None else np.asarray(features, dtype=np.float64),
        labels=labels,
        prediction_times=prediction_times,
    )
