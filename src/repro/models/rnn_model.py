"""End-to-end RNN access-probability model (Sections 6-7).

:class:`RNNModel` ties together the sequence feature builder, the recurrent
network and the trainer behind the common
:class:`~repro.models.base.AccessProbabilityModel` interface, implementing
the paper's full training recipe:

* per-session feature vectors only (no aggregation feature engineering);
* ``Δt`` inputs bucketed with the log transform of Section 5.2;
* hidden updates delayed by the lag ``δ = session length + ε`` so a
  prediction never uses a hidden state that could not exist yet in
  production (Section 6.1, Figure 2);
* loss restricted to the most recent ``rnn_loss_days`` (21 of 30) days
  (Section 6.3);
* Adam, minibatches of 10 users, optional history truncation (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import Dataset
from ..data.tasks import Example
from ..features.sequence import SequenceBuilder, UserSequence
from .base import AccessProbabilityModel, TaskSpec
from .rnn import PredictionSpec, RNNNetworkConfig, RNNPrecomputeNetwork, build_prediction_spec
from .trainer import RNNTrainer, RNNTrainerConfig, TrainingCurvePoint

__all__ = ["RNNModelConfig", "RNNModel"]


@dataclass(frozen=True)
class RNNModelConfig:
    """Hyper-parameters for the full RNN model.

    The paper uses a 128-dimensional hidden state and a 128-unit MLP; the
    defaults here are smaller so the pure-NumPy implementation trains in
    seconds at test scale, and benchmarks can raise them.
    """

    hidden_size: int = 48
    mlp_hidden: int = 64
    cell: str = "gru"
    dropout: float = 0.2
    latent_cross: bool = True
    epochs: int | None = None
    target_steps: int = 500
    max_epochs: int = 40
    batch_users: int = 10
    learning_rate: float = 2e-3
    grad_clip: float = 5.0
    strategy: str = "padded"
    n_delta_buckets: int = 50
    truncate_sessions: int = 10_000
    update_lag: int | None = None
    extra_lag: int = 60
    validation_fraction: float = 0.1
    early_stopping_patience: int | None = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.truncate_sessions <= 0:
            raise ValueError("truncate_sessions must be positive")
        if self.extra_lag < 0:
            raise ValueError("extra_lag must be non-negative")
        if self.epochs is not None and self.epochs <= 0:
            raise ValueError("epochs must be positive when given")
        if self.target_steps <= 0 or self.max_epochs <= 0:
            raise ValueError("target_steps and max_epochs must be positive")

    def resolve_batch_users(self, n_train_users: int) -> int:
        """Effective minibatch size.

        The paper uses 10 users per minibatch on million-user datasets and
        falls back to per-user processing for the tiny MPU population
        (Section 7.1).  With very few training users a batch of 10 would give
        only a handful of optimiser steps per epoch, so the batch shrinks so
        that an epoch always contains a reasonable number of updates.
        """
        if n_train_users >= 8 * self.batch_users:
            return self.batch_users
        return int(np.clip(n_train_users // 8, 2, self.batch_users))

    def resolve_epochs(self, n_train_users: int) -> int:
        """Number of epochs to run.

        The paper trains one epoch on million-user datasets and eight on the
        small MPU dataset — what matters is the number of optimiser steps,
        not passes over the data.  When ``epochs`` is not given explicitly we
        aim for roughly ``target_steps`` minibatch updates, capped at
        ``max_epochs``.
        """
        if self.epochs is not None:
            return self.epochs
        batch_users = self.resolve_batch_users(n_train_users)
        batches_per_epoch = max(1, int(np.ceil(n_train_users / batch_users)))
        return int(np.clip(np.ceil(self.target_steps / batches_per_epoch), 1, self.max_epochs))


class RNNModel(AccessProbabilityModel):
    """Recurrent access-probability model (the paper's contribution)."""

    name = "rnn"

    def __init__(self, config: RNNModelConfig | None = None, **overrides) -> None:
        if config is None:
            config = RNNModelConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.builder: SequenceBuilder | None = None
        self.network: RNNPrecomputeNetwork | None = None
        self.trainer: RNNTrainer | None = None
        self.training_curve_: list[TrainingCurvePoint] = []
        self._task: TaskSpec | None = None
        self._update_lag: int | None = None

    # ------------------------------------------------------------------
    def _resolve_update_lag(self, dataset: Dataset) -> int:
        if self.config.update_lag is not None:
            return self.config.update_lag
        # δ = session length + ε: the access flag is only known once the
        # session window closes, plus a small processing delay (Section 6.1).
        return dataset.session_length + self.config.extra_lag

    def _spec_for_examples(self, sequence: UserSequence, examples: list[Example]) -> PredictionSpec:
        assert self.builder is not None and self._task is not None and self._update_lag is not None
        times = np.asarray([e.prediction_time for e in examples], dtype=np.int64)
        labels = np.asarray([e.label for e in examples], dtype=np.float64)
        if self._task.kind == "session":
            if examples:
                features = self.builder.encode_context_rows([e.context for e in examples], times)
            else:
                features = np.zeros((0, self.builder.feature_dim))
        else:
            features = None
        return build_prediction_spec(
            sequence.timestamps,
            times,
            labels,
            features,
            update_lag=self._update_lag,
            n_delta_buckets=self.config.n_delta_buckets,
        )

    # ------------------------------------------------------------------
    def fit(self, train: Dataset, task: TaskSpec) -> "RNNModel":
        cfg = self.config
        self._task = task
        self._update_lag = self._resolve_update_lag(train)
        self.builder = SequenceBuilder(train.schema, n_delta_buckets=cfg.n_delta_buckets)

        # Hold out a small validation population for early stopping (only
        # needed because the synthetic populations are orders of magnitude
        # smaller than the paper's; see RNNTrainer.train).
        validation_data = None
        fit_population = train
        if cfg.validation_fraction > 0 and cfg.early_stopping_patience is not None and train.n_users >= 20:
            from ..data.splits import validation_split

            val_split = validation_split(train, validation_fraction=cfg.validation_fraction, seed=cfg.seed)
            fit_population = val_split.train
            validation_sequences = self.builder.build(val_split.test, max_sessions=cfg.truncate_sessions)
            validation_examples = task.loss_examples(val_split.test)
            validation_specs = [
                self._spec_for_examples(seq, validation_examples.get(seq.user_id, []))
                for seq in validation_sequences
            ]
            validation_data = (validation_sequences, validation_specs)

        sequences = self.builder.build(fit_population, max_sessions=cfg.truncate_sessions)
        loss_examples = task.loss_examples(fit_population)
        specs = [self._spec_for_examples(seq, loss_examples.get(seq.user_id, [])) for seq in sequences]

        network_config = RNNNetworkConfig(
            feature_dim=self.builder.feature_dim,
            hidden_size=cfg.hidden_size,
            mlp_hidden=cfg.mlp_hidden,
            cell=cfg.cell,
            dropout=cfg.dropout,
            latent_cross=cfg.latent_cross,
            n_delta_buckets=cfg.n_delta_buckets,
            predict_uses_context=(task.kind == "session"),
        )
        self.network = RNNPrecomputeNetwork(network_config, rng=np.random.default_rng(cfg.seed))
        self.trainer = RNNTrainer(
            RNNTrainerConfig(
                epochs=cfg.resolve_epochs(len(sequences)),
                batch_users=cfg.resolve_batch_users(len(sequences)),
                learning_rate=cfg.learning_rate,
                grad_clip=cfg.grad_clip,
                strategy=cfg.strategy,
                early_stopping_patience=cfg.early_stopping_patience,
                seed=cfg.seed,
            )
        )
        self.training_curve_ = self.trainer.train(self.network, sequences, specs, validation=validation_data)
        return self

    # ------------------------------------------------------------------
    def predict_examples(self, dataset: Dataset, examples_by_user: dict[int, list[Example]]) -> np.ndarray:
        if self.network is None or self.builder is None or self.trainer is None:
            raise RuntimeError("model is not fitted")
        users_by_id = {user.user_id: user for user in dataset.users}
        sequences: list[UserSequence] = []
        specs: list[PredictionSpec] = []
        for user_id, examples in examples_by_user.items():
            if user_id not in users_by_id:
                raise KeyError(f"examples reference unknown user {user_id}")
            sequence = self.builder.build_user(users_by_id[user_id]).truncate_last(self.config.truncate_sessions)
            sequences.append(sequence)
            specs.append(self._spec_for_examples(sequence, examples))
        if not sequences:
            return np.zeros(0)
        per_user = self.trainer.predict(self.network, sequences, specs)
        return np.concatenate(per_user) if per_user else np.zeros(0)

    # ------------------------------------------------------------------
    @property
    def hidden_state_size(self) -> int:
        """Width of the per-user state the serving layer must persist."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        return self.network.state_size

    def state_dict(self) -> dict[str, np.ndarray]:
        """Trained network parameters (for the serving deployment simulation)."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        return self.network.state_dict()
