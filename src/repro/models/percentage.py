"""Percentage-based baseline model (Section 5.1).

The simplest baseline: return each user's historical access percentage,
seeded with the global average access percentage α so that new users start
at the population rate rather than at 0:

    P(A_n) = (α + Σ_{i<n} A_i) / n

For the timeshifted task the same formula is applied over past peak windows
(one observation per day) instead of individual sessions.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import SECONDS_PER_DAY, Dataset
from ..data.tasks import Example, peak_window_examples
from .base import AccessProbabilityModel, TaskSpec, flatten_examples

__all__ = ["PercentageModel"]


class PercentageModel(AccessProbabilityModel):
    """Per-user running access percentage with a global-prior seed."""

    name = "percentage"

    def __init__(self) -> None:
        self.alpha_: float | None = None
        self._task: TaskSpec | None = None

    # ------------------------------------------------------------------
    def fit(self, train: Dataset, task: TaskSpec) -> "PercentageModel":
        """Estimate the global prior α from the training population."""
        self._task = task
        if task.kind == "session":
            total_sessions = train.n_sessions
            self.alpha_ = train.n_accesses / total_sessions if total_sessions else 0.0
        else:
            examples = peak_window_examples(train, lead_seconds=task.lead_seconds)
            labels = [e.label for e in flatten_examples(examples)]
            self.alpha_ = float(np.mean(labels)) if labels else 0.0
        return self

    # ------------------------------------------------------------------
    def _session_score(self, dataset: Dataset, example: Example) -> float:
        user = self._users[example.user_id]
        n_prior = int(np.searchsorted(user.timestamps, example.prediction_time, side="left"))
        prior_accesses = int(user.accesses[:n_prior].sum())
        return (self.alpha_ + prior_accesses) / (n_prior + 1)

    def _peak_score(self, prior_labels: np.ndarray, day_number: int) -> float:
        return (self.alpha_ + float(prior_labels.sum())) / (day_number + 1)

    def predict_examples(self, dataset: Dataset, examples_by_user: dict[int, list[Example]]) -> np.ndarray:
        if self.alpha_ is None or self._task is None:
            raise RuntimeError("model is not fitted")
        self._users = {user.user_id: user for user in dataset.users}
        flat = flatten_examples(examples_by_user)
        scores = np.empty(len(flat), dtype=np.float64)

        if self._task.kind == "session":
            for i, example in enumerate(flat):
                scores[i] = self._session_score(dataset, example)
            return scores

        # Timeshifted task: one observation per prior day.  Recompute the full
        # per-day label history for each user so that examples evaluated on
        # the final days can see all earlier days.
        full_history = peak_window_examples(dataset, lead_seconds=self._task.lead_seconds)
        labels_by_user: dict[int, np.ndarray] = {
            user_id: np.asarray([e.label for e in examples], dtype=np.float64)
            for user_id, examples in full_history.items()
        }
        for i, example in enumerate(flat):
            if example.day_index is None:
                raise ValueError("peak-task examples must carry a day index")
            history = labels_by_user.get(example.user_id, np.zeros(0))
            prior = history[: example.day_index]
            scores[i] = self._peak_score(prior, example.day_index)
        return scores
