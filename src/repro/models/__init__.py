"""Access-probability models: percentage baseline, LR, GBDT and the RNN."""

from .base import AccessProbabilityModel, PredictionResult, TaskSpec, flatten_examples
from .percentage import PercentageModel
from .rnn import PredictionSpec, RNNNetworkConfig, RNNPrecomputeNetwork, build_prediction_spec
from .rnn_model import RNNModel, RNNModelConfig
from .tabular import GBDTModel, LogisticRegressionModel
from .trainer import RNNTrainer, RNNTrainerConfig, TrainingCurvePoint

__all__ = [
    "AccessProbabilityModel",
    "PredictionResult",
    "TaskSpec",
    "flatten_examples",
    "PercentageModel",
    "LogisticRegressionModel",
    "GBDTModel",
    "RNNModel",
    "RNNModelConfig",
    "RNNNetworkConfig",
    "RNNPrecomputeNetwork",
    "PredictionSpec",
    "build_prediction_spec",
    "RNNTrainer",
    "RNNTrainerConfig",
    "TrainingCurvePoint",
]
