"""Timeshifted precompute planning (Section 3.2.1).

The point of predicting peak-window accesses hours in advance is capacity:
work moved from peak to off-peak hours reduces the peak of the daily compute
curve, which is what capacity is provisioned for.  :func:`plan_timeshift`
applies a trigger policy to per-user-per-day peak predictions and accounts
for how much peak-hour compute was avoided, how much off-peak compute was
spent (including the wasted share), and the resulting peak reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.base import PredictionResult
from .decider import PrecomputeOutcome, simulate_precompute
from .policy import ThresholdPolicy

__all__ = ["TimeshiftPlan", "plan_timeshift"]


@dataclass(frozen=True)
class TimeshiftPlan:
    """Capacity accounting for a timeshifted precompute policy.

    All quantities are expressed in "query computations" (one unit per data
    query execution).  Without timeshifting, every peak-window access costs
    one unit of *peak* compute; with it, precomputed accesses cost one unit of
    *off-peak* compute instead, and wasted precomputations add off-peak cost
    with no benefit.
    """

    outcome: PrecomputeOutcome
    peak_compute_without: int
    peak_compute_with: int
    offpeak_compute: int

    @property
    def peak_reduction(self) -> float:
        """Fraction of peak-hour compute moved off-peak (equals recall)."""
        if self.peak_compute_without == 0:
            return 0.0
        return 1.0 - self.peak_compute_with / self.peak_compute_without

    @property
    def overhead_ratio(self) -> float:
        """Total compute with timeshifting relative to the baseline."""
        if self.peak_compute_without == 0:
            return 0.0
        return (self.peak_compute_with + self.offpeak_compute) / self.peak_compute_without

    def as_row(self) -> dict[str, float]:
        row = self.outcome.as_row()
        row.update(
            {
                "peak_compute_without": self.peak_compute_without,
                "peak_compute_with": self.peak_compute_with,
                "offpeak_compute": self.offpeak_compute,
                "peak_reduction": round(self.peak_reduction, 4),
                "overhead_ratio": round(self.overhead_ratio, 4),
            }
        )
        return row


def plan_timeshift(result: PredictionResult, policy: ThresholdPolicy) -> TimeshiftPlan:
    """Apply a trigger policy to peak-window predictions and account for capacity."""
    outcome = simulate_precompute(result, policy)
    peak_without = outcome.n_accesses
    # Accesses that were precomputed are served from cache during peak hours.
    peak_with = outcome.missed_accesses
    offpeak = outcome.n_precomputes
    return TimeshiftPlan(
        outcome=outcome,
        peak_compute_without=peak_without,
        peak_compute_with=peak_with,
        offpeak_compute=offpeak,
    )
