"""Precompute trigger policies.

Predictive precompute (Section 3) turns a probability estimate into a binary
decision: precompute now, or don't.  The paper uses a fixed probability
threshold chosen so that precision (the fraction of precomputations that are
followed by an access) stays above a target — 50% for the offline comparison
of Table 4, 60% for the production deployment of Section 9.  A budget-based
policy is also provided for deployments that are constrained by precompute
volume rather than precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import threshold_for_precision

__all__ = ["ThresholdPolicy", "FixedThresholdPolicy", "PrecisionTargetPolicy", "BudgetPolicy"]


class ThresholdPolicy:
    """Interface: map access probabilities to precompute decisions."""

    def decide(self, probabilities) -> np.ndarray:
        """Boolean precompute decision for each probability."""
        raise NotImplementedError

    @property
    def threshold(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedThresholdPolicy(ThresholdPolicy):
    """Trigger precompute whenever the probability is at least ``value``."""

    value: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def decide(self, probabilities) -> np.ndarray:
        return np.asarray(probabilities, dtype=np.float64) >= self.value

    @property
    def threshold(self) -> float:
        return self.value


class PrecisionTargetPolicy(ThresholdPolicy):
    """Calibrate a threshold so that precision meets a target on held-out data.

    ``fit`` finds the smallest threshold whose operating point has precision
    at least ``precision_target`` (maximising recall subject to the
    constraint), exactly how the production threshold of Section 9 is chosen.
    """

    def __init__(self, precision_target: float) -> None:
        if not 0.0 < precision_target <= 1.0:
            raise ValueError("precision_target must be in (0, 1]")
        self.precision_target = precision_target
        self._threshold: float | None = None

    def fit(self, y_true, y_score) -> "PrecisionTargetPolicy":
        self._threshold = threshold_for_precision(y_true, y_score, self.precision_target)
        return self

    def decide(self, probabilities) -> np.ndarray:
        if self._threshold is None:
            raise RuntimeError("policy must be fit on calibration data first")
        return np.asarray(probabilities, dtype=np.float64) >= self._threshold

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("policy must be fit on calibration data first")
        return self._threshold


class BudgetPolicy(ThresholdPolicy):
    """Precompute for at most a fraction ``budget`` of sessions.

    Useful when the binding constraint is precompute volume (network/battery
    on clients, compute on servers) rather than precision.  The threshold is
    the ``1 - budget`` quantile of calibration scores.
    """

    def __init__(self, budget: float) -> None:
        if not 0.0 < budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        self.budget = budget
        self._threshold: float | None = None

    def fit(self, y_score) -> "BudgetPolicy":
        scores = np.asarray(y_score, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("cannot calibrate a budget policy without scores")
        self._threshold = float(np.quantile(scores, 1.0 - self.budget))
        return self

    def decide(self, probabilities) -> np.ndarray:
        if self._threshold is None:
            raise RuntimeError("policy must be fit on calibration data first")
        return np.asarray(probabilities, dtype=np.float64) >= self._threshold

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("policy must be fit on calibration data first")
        return self._threshold
