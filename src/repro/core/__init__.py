"""Predictive-precompute decision layer: policies, outcome accounting, timeshift planning."""

from .decider import PrecomputeOutcome, simulate_precompute
from .policy import BudgetPolicy, FixedThresholdPolicy, PrecisionTargetPolicy, ThresholdPolicy
from .timeshift import TimeshiftPlan, plan_timeshift

__all__ = [
    "PrecomputeOutcome",
    "simulate_precompute",
    "BudgetPolicy",
    "FixedThresholdPolicy",
    "PrecisionTargetPolicy",
    "ThresholdPolicy",
    "TimeshiftPlan",
    "plan_timeshift",
]
