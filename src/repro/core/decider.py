"""Turning predictions into precompute outcomes.

Given a set of scored examples and a trigger policy, :func:`simulate_precompute`
computes the quantities the paper reasons about operationally:

* **successful prefetches** — sessions where data was precomputed *and* the
  activity was accessed (the +7.81% headline of Section 9 counts these);
* **wasted precomputations** — precomputed but never accessed (the cost being
  bounded by the precision constraint);
* **missed accesses** — accessed but not precomputed (each one is user-visible
  latency, which is why recall improvements matter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.base import PredictionResult
from .policy import ThresholdPolicy

__all__ = ["PrecomputeOutcome", "simulate_precompute"]


@dataclass(frozen=True)
class PrecomputeOutcome:
    """Aggregate result of applying a precompute policy to scored sessions."""

    n_examples: int
    n_accesses: int
    n_precomputes: int
    successful_prefetches: int
    wasted_precomputes: int
    missed_accesses: int
    threshold: float

    @property
    def precision(self) -> float:
        """Fraction of precomputations that were followed by an access."""
        return self.successful_prefetches / self.n_precomputes if self.n_precomputes else 0.0

    @property
    def recall(self) -> float:
        """Fraction of accesses that were successfully precomputed."""
        return self.successful_prefetches / self.n_accesses if self.n_accesses else 0.0

    @property
    def precompute_rate(self) -> float:
        """Fraction of sessions that triggered a precompute."""
        return self.n_precomputes / self.n_examples if self.n_examples else 0.0

    @property
    def waste_rate(self) -> float:
        """Fraction of precomputations that were wasted."""
        return self.wasted_precomputes / self.n_precomputes if self.n_precomputes else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "examples": self.n_examples,
            "accesses": self.n_accesses,
            "precomputes": self.n_precomputes,
            "successful_prefetches": self.successful_prefetches,
            "wasted_precomputes": self.wasted_precomputes,
            "missed_accesses": self.missed_accesses,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "threshold": round(self.threshold, 6),
        }


def simulate_precompute(result: PredictionResult, policy: ThresholdPolicy) -> PrecomputeOutcome:
    """Apply a trigger policy to scored examples and tally the outcomes."""
    decisions = np.asarray(policy.decide(result.y_score), dtype=bool)
    labels = result.y_true.astype(bool)
    successful = int(np.sum(decisions & labels))
    wasted = int(np.sum(decisions & ~labels))
    missed = int(np.sum(~decisions & labels))
    return PrecomputeOutcome(
        n_examples=len(result),
        n_accesses=int(labels.sum()),
        n_precomputes=int(decisions.sum()),
        successful_prefetches=successful,
        wasted_precomputes=wasted,
        missed_accesses=missed,
        threshold=policy.threshold,
    )
