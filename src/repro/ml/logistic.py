"""L2-regularised logistic regression (replacement for scikit-learn's, Section 5.3).

The paper trains ``sklearn.linear_model.LogisticRegression`` with the saga
solver on the engineered feature vectors.  This implementation optimises the
same objective — mean binary log loss plus an L2 penalty — with full-batch
Adam and an optional internal feature standardisation for conditioning (the
engineered aggregation counts span several orders of magnitude).  The solver
choice does not change the model class, only the route to the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogisticRegression", "LogisticRegressionConfig"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass(frozen=True)
class LogisticRegressionConfig:
    """Hyper-parameters of the logistic regression trainer."""

    l2: float = 1e-2
    learning_rate: float = 0.1
    max_iter: int = 600
    tol: float = 1e-6
    standardize: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.max_iter <= 0:
            raise ValueError("max_iter must be positive")


class LogisticRegression:
    """Binary logistic regression with full-batch Adam optimisation."""

    def __init__(self, config: LogisticRegressionConfig | None = None, **overrides) -> None:
        if config is None:
            config = LogisticRegressionConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def _prepare(self, X: np.ndarray, fit_scaler: bool) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if not self.config.standardize:
            return X
        if fit_scaler:
            self._mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale < 1e-12] = 1.0
            self._scale = scale
        if self._mean is None or self._scale is None:
            raise RuntimeError("model must be fit before transforming features")
        return (X - self._mean) / self._scale

    # ------------------------------------------------------------------
    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        """Fit the model by minimising regularised mean log loss."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be 0 or 1")
        if sample_weight is None:
            weights = np.ones_like(y)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).reshape(-1)
            if weights.shape != y.shape:
                raise ValueError("sample_weight must match y")
        weights = weights / weights.sum()

        Xs = self._prepare(X, fit_scaler=True)
        n_features = Xs.shape[1]
        coef = np.zeros(n_features)
        intercept = float(np.log((y * weights).sum() / max(1e-12, ((1 - y) * weights).sum()) + 1e-12))

        cfg = self.config
        m = np.zeros(n_features + 1)
        v = np.zeros(n_features + 1)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        previous_loss = np.inf
        self.loss_history_ = []

        for step in range(1, cfg.max_iter + 1):
            logits = Xs @ coef + intercept
            probs = _sigmoid(logits)
            error = (probs - y) * weights
            grad_coef = Xs.T @ error + cfg.l2 * coef
            grad_intercept = error.sum()
            grad = np.concatenate([grad_coef, [grad_intercept]])

            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1 ** step)
            v_hat = v / (1 - beta2 ** step)
            update = cfg.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            coef -= update[:-1]
            intercept -= update[-1]

            clipped = np.clip(probs, 1e-12, 1 - 1e-12)
            loss = float(-(weights * (y * np.log(clipped) + (1 - y) * np.log(1 - clipped))).sum())
            loss += 0.5 * cfg.l2 * float(coef @ coef)
            self.loss_history_.append(loss)
            if abs(previous_loss - loss) < cfg.tol:
                break
            previous_loss = loss

        self.coef_ = coef
        self.intercept_ = float(intercept)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        Xs = self._prepare(np.asarray(X, dtype=np.float64), fit_scaler=False)
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)
