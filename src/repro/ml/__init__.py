"""Classical machine-learning substrate: logistic regression, trees, GBDT."""

from .binning import QuantileBinner
from .gbdt import GBDTConfig, GradientBoostedTrees
from .logistic import LogisticRegression, LogisticRegressionConfig
from .tree import RegressionTree, TreeParams

__all__ = [
    "QuantileBinner",
    "GBDTConfig",
    "GradientBoostedTrees",
    "LogisticRegression",
    "LogisticRegressionConfig",
    "RegressionTree",
    "TreeParams",
]
