"""Gradient boosted decision trees with a binary log-loss objective (Section 5.4).

A from-scratch, histogram-based second-order GBDT standing in for XGBoost
0.90: trees are fit to the gradient/hessian of the logistic loss, predictions
are accumulated in logit space, and an optional evaluation set provides early
stopping.  :meth:`GradientBoostedTrees.fit_with_depth_search` reproduces the
paper's protocol of exhaustively searching tree depths on a held-out
validation split of users and keeping the depth with the lowest validation
log loss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .binning import QuantileBinner
from .tree import RegressionTree, TreeParams

__all__ = ["GBDTConfig", "GradientBoostedTrees"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
    p = np.clip(p, 1e-12, 1 - 1e-12)
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


@dataclass(frozen=True)
class GBDTConfig:
    """Boosting hyper-parameters (defaults chosen to mirror "mostly default" XGBoost)."""

    n_rounds: int = 60
    learning_rate: float = 0.2
    max_depth: int = 4
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    max_bins: int = 64
    subsample: float = 1.0
    early_stopping_rounds: int | None = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )


class GradientBoostedTrees:
    """Binary classifier built from boosted histogram regression trees."""

    def __init__(self, config: GBDTConfig | None = None, **overrides) -> None:
        if config is None:
            config = GBDTConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.trees: list[RegressionTree] = []
        self.base_score_: float = 0.0
        self.binner: QuantileBinner | None = None
        self.train_loss_history_: list[float] = []
        self.valid_loss_history_: list[float] = []
        self.best_iteration_: int | None = None

    # ------------------------------------------------------------------
    def fit(self, X, y, eval_set: tuple[np.ndarray, np.ndarray] | None = None) -> "GradientBoostedTrees":
        """Fit the boosted ensemble, optionally early-stopping on ``eval_set``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X and y have incompatible shapes")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be 0 or 1")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.binner = QuantileBinner(max_bins=cfg.max_bins).fit(X)
        binned = self.binner.transform(X)
        n_bins = cfg.max_bins

        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(y.shape[0], self.base_score_)

        eval_binned = None
        eval_raw = None
        eval_labels = None
        if eval_set is not None:
            eval_X, eval_y = eval_set
            eval_binned = self.binner.transform(np.asarray(eval_X, dtype=np.float64))
            eval_labels = np.asarray(eval_y, dtype=np.float64).reshape(-1)
            eval_raw = np.full(eval_labels.shape[0], self.base_score_)

        self.trees = []
        self.train_loss_history_ = []
        self.valid_loss_history_ = []
        best_loss = np.inf
        best_iteration = 0
        rounds_since_best = 0

        for round_index in range(cfg.n_rounds):
            probabilities = _sigmoid(raw)
            gradients = probabilities - y
            hessians = probabilities * (1.0 - probabilities)

            if cfg.subsample < 1.0:
                mask = rng.random(y.shape[0]) < cfg.subsample
                if not mask.any():
                    mask[rng.integers(0, y.shape[0])] = True
                tree = RegressionTree(cfg.tree_params()).fit(
                    binned[mask], gradients[mask], hessians[mask], n_bins
                )
            else:
                tree = RegressionTree(cfg.tree_params()).fit(binned, gradients, hessians, n_bins)
            self.trees.append(tree)

            raw += cfg.learning_rate * tree.predict(binned)
            self.train_loss_history_.append(_log_loss(y, _sigmoid(raw)))

            if eval_binned is not None:
                eval_raw += cfg.learning_rate * tree.predict(eval_binned)
                valid_loss = _log_loss(eval_labels, _sigmoid(eval_raw))
                self.valid_loss_history_.append(valid_loss)
                if valid_loss < best_loss - 1e-7:
                    best_loss = valid_loss
                    best_iteration = round_index
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if cfg.early_stopping_rounds is not None and rounds_since_best >= cfg.early_stopping_rounds:
                        break

        if eval_binned is not None and self.trees:
            self.best_iteration_ = best_iteration
            self.trees = self.trees[: best_iteration + 1]
        else:
            self.best_iteration_ = len(self.trees) - 1
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        if self.binner is None:
            raise RuntimeError("model is not fitted")
        binned = self.binner.transform(np.asarray(X, dtype=np.float64))
        raw = np.full(binned.shape[0], self.base_score_)
        for tree in self.trees:
            raw += self.config.learning_rate * tree.predict(binned)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def feature_importance(self, n_features: int | None = None) -> np.ndarray:
        """Aggregate split-count importance across all trees."""
        if self.binner is None:
            raise RuntimeError("model is not fitted")
        width = n_features if n_features is not None else self.binner.n_features
        importance = np.zeros(width, dtype=np.float64)
        for tree in self.trees:
            importance += tree.feature_importance(width)
        return importance

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    @property
    def n_nodes(self) -> int:
        """Total node count across the ensemble (used by the serving cost model)."""
        return int(sum(tree.n_nodes for tree in self.trees))

    # ------------------------------------------------------------------
    @classmethod
    def fit_with_depth_search(
        cls,
        X_train,
        y_train,
        X_valid,
        y_valid,
        depths: tuple[int, ...] = tuple(range(1, 11)),
        config: GBDTConfig | None = None,
    ) -> tuple["GradientBoostedTrees", int, dict[int, float]]:
        """Exhaustive tree-depth search on a validation split (Section 5.4).

        Returns ``(best_model, best_depth, validation_loss_by_depth)``.  The
        returned model is the one trained at the best depth (with early
        stopping against the validation set), matching the paper's protocol
        of minimising validation log loss over depths 1-10.
        """
        if not depths:
            raise ValueError("depths must be non-empty")
        base = config or GBDTConfig()
        losses: dict[int, float] = {}
        best_model: GradientBoostedTrees | None = None
        best_depth = depths[0]
        best_loss = np.inf
        for depth in depths:
            model = cls(replace(base, max_depth=depth))
            model.fit(X_train, y_train, eval_set=(X_valid, y_valid))
            valid_loss = _log_loss(np.asarray(y_valid, dtype=np.float64).reshape(-1), model.predict_proba(X_valid))
            losses[depth] = valid_loss
            if valid_loss < best_loss:
                best_loss = valid_loss
                best_model = model
                best_depth = depth
        assert best_model is not None
        return best_model, best_depth, losses
