"""Histogram-based regression tree used as the GBDT weak learner.

Each tree is grown level-wise on pre-binned features.  Split finding follows
the second-order (gradient/hessian) gain formulation of XGBoost
(Chen & Guestrin, 2016), which is the system the paper uses:

    gain = 1/2 [ G_L^2/(H_L+λ) + G_R^2/(H_R+λ) − G^2/(H+λ) ] − γ

and leaf weights are ``-G/(H+λ)``.  All histograms for one tree level are
accumulated with a single ``bincount`` over flattened
(node, feature, bin) indices, which keeps the pure-NumPy implementation fast
enough for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TreeParams", "RegressionTree"]


@dataclass(frozen=True)
class TreeParams:
    """Growth and regularisation parameters for a single tree."""

    max_depth: int = 4
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_split_gain: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.min_child_weight < 0 or self.reg_lambda < 0 or self.gamma < 0:
            raise ValueError("regularisation parameters must be non-negative")


class RegressionTree:
    """A single fitted regression tree over binned features."""

    def __init__(self, params: TreeParams) -> None:
        self.params = params
        # Flat node arrays; children of node i are stored by index.
        self.feature: list[int] = []
        self.threshold_bin: list[int] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []
        self.is_leaf: list[bool] = []

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(sum(self.is_leaf))

    def _new_node(self, value: float) -> int:
        self.feature.append(-1)
        self.threshold_bin.append(-1)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        self.is_leaf.append(True)
        return len(self.feature) - 1

    # ------------------------------------------------------------------
    def fit(self, binned: np.ndarray, gradients: np.ndarray, hessians: np.ndarray, n_bins: int) -> "RegressionTree":
        """Grow the tree on pre-binned features and per-example grad/hess."""
        binned = np.asarray(binned)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        n_samples, n_features = binned.shape
        if gradients.shape[0] != n_samples or hessians.shape[0] != n_samples:
            raise ValueError("gradients/hessians must align with the binned matrix")
        params = self.params
        lam = params.reg_lambda

        total_g = gradients.sum()
        total_h = hessians.sum()
        root = self._new_node(-total_g / (total_h + lam))

        # node assignment of every sample; -1 marks samples in finalized leaves.
        node_of_sample = np.zeros(n_samples, dtype=np.int64)
        active_nodes = [root]
        node_stats = {root: (total_g, total_h)}

        for depth in range(params.max_depth):
            if not active_nodes:
                break
            active_index = {node: i for i, node in enumerate(active_nodes)}
            active_mask = np.isin(node_of_sample, active_nodes)
            if not active_mask.any():
                break
            sample_index = np.nonzero(active_mask)[0]
            local_node = np.vectorize(active_index.get, otypes=[np.int64])(node_of_sample[sample_index])
            sub_binned = binned[sample_index]

            n_active = len(active_nodes)
            # Flattened (node, feature, bin) histogram indices.
            flat = (
                (local_node[:, None] * n_features + np.arange(n_features)[None, :]) * n_bins
                + sub_binned.astype(np.int64)
            ).ravel()
            weights_g = np.repeat(gradients[sample_index], n_features)
            weights_h = np.repeat(hessians[sample_index], n_features)
            size = n_active * n_features * n_bins
            hist_g = np.bincount(flat, weights=weights_g, minlength=size).reshape(n_active, n_features, n_bins)
            hist_h = np.bincount(flat, weights=weights_h, minlength=size).reshape(n_active, n_features, n_bins)

            # Cumulative (left-side) statistics over bins for every candidate split.
            left_g = np.cumsum(hist_g, axis=2)
            left_h = np.cumsum(hist_h, axis=2)
            node_g = np.array([node_stats[n][0] for n in active_nodes])[:, None, None]
            node_h = np.array([node_stats[n][1] for n in active_nodes])[:, None, None]
            right_g = node_g - left_g
            right_h = node_h - left_h

            valid = (left_h >= params.min_child_weight) & (right_h >= params.min_child_weight)
            # Exclude the last bin: splitting there puts everything left.
            valid[:, :, -1] = False
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = 0.5 * (
                    left_g**2 / (left_h + lam)
                    + right_g**2 / (right_h + lam)
                    - node_g**2 / (node_h + lam)
                ) - params.gamma
            gain = np.where(valid, gain, -np.inf)

            flat_gain = gain.reshape(n_active, -1)
            best_flat = np.argmax(flat_gain, axis=1)
            best_gain = flat_gain[np.arange(n_active), best_flat]
            best_feature = best_flat // n_bins
            best_bin = best_flat % n_bins

            next_active: list[int] = []
            split_spec: dict[int, tuple[int, int, int, int]] = {}
            for i, node in enumerate(active_nodes):
                if depth == params.max_depth - 1 or best_gain[i] <= params.min_split_gain or not np.isfinite(best_gain[i]):
                    continue
                f, b = int(best_feature[i]), int(best_bin[i])
                gl, hl = float(left_g[i, f, b]), float(left_h[i, f, b])
                gr, hr = float(right_g[i, f, b]), float(right_h[i, f, b])
                left_child = self._new_node(-gl / (hl + lam))
                right_child = self._new_node(-gr / (hr + lam))
                self.feature[node] = f
                self.threshold_bin[node] = b
                self.left[node] = left_child
                self.right[node] = right_child
                self.is_leaf[node] = False
                node_stats[left_child] = (gl, hl)
                node_stats[right_child] = (gr, hr)
                split_spec[node] = (f, b, left_child, right_child)
                next_active.extend([left_child, right_child])

            if not split_spec:
                break
            # Route samples of split nodes to their children.
            for node, (f, b, left_child, right_child) in split_spec.items():
                members = sample_index[node_of_sample[sample_index] == node]
                goes_left = binned[members, f] <= b
                node_of_sample[members] = np.where(goes_left, left_child, right_child)
            active_nodes = next_active

        return self

    # ------------------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for each row of a binned feature matrix."""
        binned = np.asarray(binned)
        n_samples = binned.shape[0]
        output = np.empty(n_samples, dtype=np.float64)
        feature = np.asarray(self.feature)
        threshold = np.asarray(self.threshold_bin)
        left = np.asarray(self.left)
        right = np.asarray(self.right)
        value = np.asarray(self.value)
        is_leaf = np.asarray(self.is_leaf)

        node = np.zeros(n_samples, dtype=np.int64)
        pending = np.arange(n_samples)
        while pending.size:
            current = node[pending]
            leaf_mask = is_leaf[current]
            done = pending[leaf_mask]
            output[done] = value[current[leaf_mask]]
            pending = pending[~leaf_mask]
            if pending.size == 0:
                break
            current = node[pending]
            split_feature = feature[current]
            goes_left = binned[pending, split_feature] <= threshold[current]
            node[pending] = np.where(goes_left, left[current], right[current])
        return output

    # ------------------------------------------------------------------
    def feature_importance(self, n_features: int) -> np.ndarray:
        """Split counts per feature (a simple importance measure)."""
        importance = np.zeros(n_features, dtype=np.float64)
        for node in range(self.n_nodes):
            if not self.is_leaf[node]:
                importance[self.feature[node]] += 1.0
        return importance
