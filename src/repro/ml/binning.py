"""Quantile binning of features for histogram-based tree learning.

XGBoost-style gradient boosting (Section 5.4) does not need exact feature
values — only an ordering — so features are discretised into at most
``max_bins`` quantile bins once, and all split finding then works on compact
integer codes.  This both matches modern GBDT implementations and keeps the
pure-NumPy training loop fast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Per-feature quantile discretiser producing uint8/uint16 bin codes."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.bin_edges_: list[np.ndarray] | None = None

    @property
    def n_features(self) -> int:
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.bin_edges_)

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        """Learn per-feature bin edges from the training matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] == 0:
            raise ValueError("cannot fit binner on an empty matrix")
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for column in range(X.shape[1]):
            values = X[:, column]
            finite = values[np.isfinite(values)]
            if finite.size == 0:
                edges.append(np.zeros(0))
                continue
            candidate = np.unique(np.quantile(finite, quantiles))
            # Drop edges that would create empty bins (identical quantiles).
            edges.append(candidate)
        self.bin_edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map a raw feature matrix to integer bin codes."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.bin_edges_):
            raise ValueError("X has the wrong shape for this binner")
        binned = np.zeros(X.shape, dtype=np.uint16)
        for column, edges in enumerate(self.bin_edges_):
            if edges.size == 0:
                continue
            values = X[:, column]
            # Non-finite values (e.g. "no previous access") sort above every
            # edge, landing them in the top bin — a consistent, learnable slot.
            values = np.where(np.isfinite(values), values, np.inf)
            binned[:, column] = np.searchsorted(edges, values, side="left")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, column: int) -> int:
        """Number of distinct bins produced for a feature column."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        return int(self.bin_edges_[column].size) + 1
