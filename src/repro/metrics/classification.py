"""Binary-classification metrics used throughout the paper's evaluation.

Section 8 of the paper evaluates every model with the precision-recall curve,
its area (PR-AUC), and the recall achieved at a fixed precision constraint
(e.g. 50% offline, 60% in the online experiment).  Log loss is the training
objective (Section 6.3).  All functions operate on plain NumPy arrays of
scores/probabilities and 0/1 labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "log_loss",
    "precision_recall_curve",
    "pr_auc",
    "recall_at_precision",
    "precision_at_recall",
    "threshold_for_precision",
    "roc_auc",
    "PRCurve",
]

_EPS = 1e-12


def _validate(y_true, y_score) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_score = np.asarray(y_score, dtype=np.float64).reshape(-1)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: labels {y_true.shape} vs scores {y_score.shape}")
    if y_true.size == 0:
        raise ValueError("empty input")
    if not np.all((y_true == 0) | (y_true == 1)):
        raise ValueError("labels must be 0 or 1")
    if np.any(~np.isfinite(y_score)):
        raise ValueError("scores must be finite")
    return y_true, y_score


def log_loss(y_true, y_prob, sample_weight=None) -> float:
    """Mean binary cross-entropy; probabilities are clipped away from {0, 1}."""
    y_true, y_prob = _validate(y_true, y_prob)
    p = np.clip(y_prob, _EPS, 1.0 - _EPS)
    losses = -(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))
    if sample_weight is None:
        return float(losses.mean())
    weights = np.asarray(sample_weight, dtype=np.float64).reshape(-1)
    if weights.shape != losses.shape:
        raise ValueError("sample_weight must match the number of examples")
    return float(np.average(losses, weights=weights))


@dataclass(frozen=True)
class PRCurve:
    """A precision-recall curve.

    ``precision[i]``/``recall[i]`` is the operating point obtained by
    thresholding scores at ``thresholds[i]`` (score >= threshold triggers a
    precompute).  Points are ordered by decreasing threshold, so recall is
    non-decreasing along the arrays.  A final (precision=positive rate,
    recall=1) endpoint is implied but not stored.
    """

    precision: np.ndarray
    recall: np.ndarray
    thresholds: np.ndarray

    def as_series(self) -> list[tuple[float, float]]:
        """Return ``(recall, precision)`` pairs, e.g. for plotting Figure 6."""
        return list(zip(self.recall.tolist(), self.precision.tolist()))


def precision_recall_curve(y_true, y_score) -> PRCurve:
    """Compute the precision-recall curve over all distinct score thresholds.

    Follows the same construction as scikit-learn's
    ``precision_recall_curve`` (which the paper cites for Figure 6): scores
    are sorted descending, and at each distinct score value we record the
    precision and recall of classifying everything at or above it as
    positive.
    """
    y_true, y_score = _validate(y_true, y_score)
    n_positive = float(y_true.sum())
    if n_positive == 0:
        raise ValueError("precision-recall curve undefined without positive examples")

    order = np.argsort(-y_score, kind="stable")
    sorted_scores = y_score[order]
    sorted_labels = y_true[order]

    # Indices where the score changes (last occurrence of each distinct value).
    distinct = np.where(np.diff(sorted_scores))[0]
    boundaries = np.concatenate([distinct, [sorted_scores.size - 1]])

    cumulative_tp = np.cumsum(sorted_labels)[boundaries]
    predicted_positive = boundaries + 1.0
    precision = cumulative_tp / predicted_positive
    recall = cumulative_tp / n_positive
    thresholds = sorted_scores[boundaries]
    return PRCurve(precision=precision, recall=recall, thresholds=thresholds)


def pr_auc(y_true, y_score) -> float:
    """Area under the precision-recall curve.

    Uses the step-wise (rectangular) interpolation of average precision,
    which is the recommended estimator for heavily skewed datasets
    (Davis & Goadrich, 2006) and matches scikit-learn's
    ``average_precision_score``.
    """
    curve = precision_recall_curve(y_true, y_score)
    recall = np.concatenate([[0.0], curve.recall])
    precision = curve.precision
    return float(np.sum(np.diff(recall) * precision))


def recall_at_precision(y_true, y_score, precision_target: float) -> float:
    """Maximum recall achievable while keeping precision >= ``precision_target``.

    This is the paper's Table 4 metric ("recall at 50% precision"): in
    deployment one chooses the threshold that maximises recall subject to a
    bound on wasted precomputations.  Returns 0.0 when no threshold meets the
    precision constraint.
    """
    if not 0.0 < precision_target <= 1.0:
        raise ValueError("precision_target must be in (0, 1]")
    curve = precision_recall_curve(y_true, y_score)
    feasible = curve.precision >= precision_target
    if not np.any(feasible):
        return 0.0
    return float(curve.recall[feasible].max())


def precision_at_recall(y_true, y_score, recall_target: float) -> float:
    """Maximum precision achievable while keeping recall >= ``recall_target``."""
    if not 0.0 < recall_target <= 1.0:
        raise ValueError("recall_target must be in (0, 1]")
    curve = precision_recall_curve(y_true, y_score)
    feasible = curve.recall >= recall_target
    if not np.any(feasible):
        return 0.0
    return float(curve.precision[feasible].max())


def threshold_for_precision(y_true, y_score, precision_target: float) -> float:
    """Smallest threshold whose operating point has precision >= target.

    Used to pick the production decision threshold (Section 9 targets a
    precision of 60%).  If the constraint cannot be met the highest observed
    score is returned, effectively disabling precompute.
    """
    if not 0.0 < precision_target <= 1.0:
        raise ValueError("precision_target must be in (0, 1]")
    curve = precision_recall_curve(y_true, y_score)
    feasible = curve.precision >= precision_target
    if not np.any(feasible):
        return float(np.max(y_score)) + _EPS
    # Points are ordered by decreasing threshold; among feasible points the
    # one with the largest recall is the last feasible index.
    feasible_indices = np.where(feasible)[0]
    return float(curve.thresholds[feasible_indices[-1]])


def roc_auc(y_true, y_score) -> float:
    """Area under the ROC curve (rank statistic), included for completeness."""
    y_true, y_score = _validate(y_true, y_score)
    positives = y_score[y_true == 1]
    negatives = y_score[y_true == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ValueError("roc_auc requires both positive and negative examples")
    order = np.argsort(np.concatenate([negatives, positives]), kind="stable")
    ranks = np.empty(order.size, dtype=np.float64)
    ranks[order] = np.arange(1, order.size + 1)
    # Average ranks for ties.
    combined = np.concatenate([negatives, positives])
    sorted_combined = np.sort(combined)
    unique, first_index, counts = np.unique(sorted_combined, return_index=True, return_counts=True)
    average_rank = first_index + (counts + 1) / 2.0
    rank_map = dict(zip(unique.tolist(), average_rank.tolist()))
    ranks = np.array([rank_map[v] for v in combined.tolist()])
    positive_ranks = ranks[negatives.size:]
    n_pos, n_neg = positives.size, negatives.size
    return float((positive_ranks.sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
