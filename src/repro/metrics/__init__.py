"""Evaluation metrics: log loss, precision-recall analysis, bootstrap CIs."""

from .bootstrap import BootstrapResult, bootstrap_ci, paired_bootstrap_delta
from .classification import (
    PRCurve,
    log_loss,
    pr_auc,
    precision_at_recall,
    precision_recall_curve,
    recall_at_precision,
    roc_auc,
    threshold_for_precision,
)

__all__ = [
    "PRCurve",
    "log_loss",
    "pr_auc",
    "precision_at_recall",
    "precision_recall_curve",
    "recall_at_precision",
    "roc_auc",
    "threshold_for_precision",
    "BootstrapResult",
    "bootstrap_ci",
    "paired_bootstrap_delta",
]
