"""Bootstrap confidence intervals for evaluation metrics.

The paper reports point estimates; for a reproduction on synthetic data it is
useful to know how much of an observed gap between two models is noise.
``bootstrap_ci`` resamples users (not individual sessions, since sessions of
one user are highly correlated) and recomputes a metric on each resample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci", "paired_bootstrap_delta"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate plus a percentile confidence interval."""

    point: float
    low: float
    high: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _group_indices(groups: np.ndarray) -> dict:
    indices: dict = {}
    for position, group in enumerate(groups):
        indices.setdefault(group, []).append(position)
    return {k: np.asarray(v, dtype=np.intp) for k, v in indices.items()}


def bootstrap_ci(
    metric: Callable[[np.ndarray, np.ndarray], float],
    y_true: Sequence[float],
    y_score: Sequence[float],
    groups: Sequence,
    *,
    n_resamples: int = 200,
    alpha: float = 0.05,
    seed: int = 0,
) -> BootstrapResult:
    """Grouped (per-user) bootstrap confidence interval for ``metric``."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_score = np.asarray(y_score, dtype=np.float64)
    groups = np.asarray(groups)
    if not (len(y_true) == len(y_score) == len(groups)):
        raise ValueError("y_true, y_score and groups must have equal length")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = np.random.default_rng(seed)
    by_group = _group_indices(groups)
    group_keys = list(by_group)
    point = float(metric(y_true, y_score))
    samples = np.empty(n_resamples, dtype=np.float64)
    for r in range(n_resamples):
        chosen = rng.choice(len(group_keys), size=len(group_keys), replace=True)
        idx = np.concatenate([by_group[group_keys[c]] for c in chosen])
        try:
            samples[r] = metric(y_true[idx], y_score[idx])
        except ValueError:
            # Degenerate resample (e.g. no positives); fall back to the point estimate.
            samples[r] = point
    low, high = np.quantile(samples, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(point=point, low=float(low), high=float(high), n_resamples=n_resamples)


def paired_bootstrap_delta(
    metric: Callable[[np.ndarray, np.ndarray], float],
    y_true: Sequence[float],
    score_a: Sequence[float],
    score_b: Sequence[float],
    groups: Sequence,
    *,
    n_resamples: int = 200,
    alpha: float = 0.05,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CI for ``metric(A) - metric(B)`` evaluated on the same users."""
    y_true = np.asarray(y_true, dtype=np.float64)
    score_a = np.asarray(score_a, dtype=np.float64)
    score_b = np.asarray(score_b, dtype=np.float64)
    groups = np.asarray(groups)
    if not (len(y_true) == len(score_a) == len(score_b) == len(groups)):
        raise ValueError("all inputs must have equal length")
    rng = np.random.default_rng(seed)
    by_group = _group_indices(groups)
    group_keys = list(by_group)
    point = float(metric(y_true, score_a) - metric(y_true, score_b))
    samples = np.empty(n_resamples, dtype=np.float64)
    for r in range(n_resamples):
        chosen = rng.choice(len(group_keys), size=len(group_keys), replace=True)
        idx = np.concatenate([by_group[group_keys[c]] for c in chosen])
        try:
            samples[r] = metric(y_true[idx], score_a[idx]) - metric(y_true[idx], score_b[idx])
        except ValueError:
            samples[r] = point
    low, high = np.quantile(samples, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(point=point, low=float(low), high=float(high), n_resamples=n_resamples)
