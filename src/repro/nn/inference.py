"""Batched eval-time inference kernels (plain NumPy, no autograd).

The serving layer's hot path is a forward pass over a *stack* of per-user
hidden states — no gradients, no graph.  Routing that through
:class:`~repro.nn.tensor.Tensor` would allocate an autograd node per
operation per request, which is exactly the Python overhead the paper's
production system avoids by batching.  These kernels compute the same
functions as the module/autograd implementations (same operation order, so
results agree to floating-point identity on identical inputs) but operate
directly on ``np.ndarray`` stacks of shape ``[batch, dim]``.

Only the *evaluation-time* forward is provided: dropout is an identity at
inference, and serving always runs frozen (``eval()``-mode) networks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear",
    "relu",
    "sigmoid",
    "stable_sigmoid",
    "gru_step",
    "lstm_step",
    "elman_step",
    "cell_step",
]


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight.T + bias`` (PyTorch convention)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, matching ``Tensor.relu`` (``x * (x > 0)``)."""
    return x * (x > 0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid, matching ``Tensor.sigmoid`` exactly."""
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, -500, 500))),
        np.exp(np.clip(x, -500, 500)) / (1.0 + np.exp(np.clip(x, -500, 500))),
    )


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Branch-masked stable sigmoid — the fused GRU step's gate function.

    Delegates to the single implementation in :mod:`repro.nn.rnn` so the
    bit-identity between the batched and autograd GRU paths cannot drift.
    """
    from .rnn import _stable_sigmoid

    return _stable_sigmoid(z)


def gru_step(
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_ih: np.ndarray,
    bias_hh: np.ndarray,
) -> np.ndarray:
    """One batched GRU step over ``[B, input]`` / ``[B, hidden]`` stacks.

    Identical arithmetic to :func:`repro.nn.rnn.fused_gru_step`'s forward
    pass (PyTorch gate convention), minus the autograd bookkeeping.
    """
    hidden = h_prev.shape[1]
    gates_i = x @ weight_ih.T + bias_ih
    gates_h = h_prev @ weight_hh.T + bias_hh
    reset = stable_sigmoid(gates_i[:, :hidden] + gates_h[:, :hidden])
    update = stable_sigmoid(gates_i[:, hidden : 2 * hidden] + gates_h[:, hidden : 2 * hidden])
    candidate = np.tanh(gates_i[:, 2 * hidden :] + reset * gates_h[:, 2 * hidden :])
    return (1.0 - update) * candidate + update * h_prev


def lstm_step(
    x: np.ndarray,
    state: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_ih: np.ndarray,
    bias_hh: np.ndarray,
) -> np.ndarray:
    """One batched LSTM step over the packed ``[B, 2*hidden]`` state."""
    hidden = state.shape[1] // 2
    h_prev = state[:, :hidden]
    c_prev = state[:, hidden:]
    gates = linear(x, weight_ih, bias_ih) + linear(h_prev, weight_hh, bias_hh)
    i_gate = sigmoid(gates[:, :hidden])
    f_gate = sigmoid(gates[:, hidden : 2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o_gate = sigmoid(gates[:, 3 * hidden :])
    c_new = f_gate * c_prev + i_gate * g_gate
    h_new = o_gate * np.tanh(c_new)
    return np.concatenate([h_new, c_new], axis=1)


def elman_step(
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """One batched tanh (Elman) step."""
    return np.tanh(linear(x, weight_ih, bias) + h_prev @ weight_hh.T)


def cell_step(cell, x: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Dispatch one batched inference step for any registered recurrent cell.

    ``cell`` is a :class:`~repro.nn.rnn.RecurrentCell` instance; the kernels
    read its parameter arrays directly.
    """
    from .rnn import ElmanCell, GRUCell, LSTMCell

    x = np.asarray(x, dtype=np.float64)
    state = np.asarray(state, dtype=np.float64)
    if isinstance(cell, GRUCell):
        return gru_step(
            x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias_ih.data, cell.bias_hh.data
        )
    if isinstance(cell, LSTMCell):
        return lstm_step(
            x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias_ih.data, cell.bias_hh.data
        )
    if isinstance(cell, ElmanCell):
        return elman_step(x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias.data)
    raise TypeError(f"no inference kernel for cell type {type(cell).__name__}")
