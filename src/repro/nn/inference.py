"""Batched eval-time inference kernels (plain NumPy, no autograd).

The serving layer's hot path is a forward pass over a *stack* of per-user
hidden states — no gradients, no graph.  Routing that through
:class:`~repro.nn.tensor.Tensor` would allocate an autograd node per
operation per request, which is exactly the Python overhead the paper's
production system avoids by batching.  These kernels compute the same
functions as the module/autograd implementations (same operation order, so
results agree to floating-point identity on identical inputs) but operate
directly on ``np.ndarray`` stacks of shape ``[batch, dim]``.

Only the *evaluation-time* forward is provided: dropout is an identity at
inference, and serving always runs frozen (``eval()``-mode) networks.

The recurrent *update* kernels additionally guarantee **batch-size
invariance**: applying a ``[B, hidden]`` stack of session updates in one step
is bit-identical to applying the same rows one at a time.  BLAS matmuls do
not have that property (blocking and FMA order depend on the shape), so the
update kernels contract through :func:`row_stable_linear` instead — this is
what lets the wave-coalesced timer scheduler batch session-end GRU updates
without being observable in any stored state.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear",
    "row_stable_linear",
    "relu",
    "sigmoid",
    "stable_sigmoid",
    "gru_step",
    "lstm_step",
    "elman_step",
    "cell_step",
]


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight.T + bias`` (PyTorch convention)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def row_stable_linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map whose per-row results are independent of the batch size.

    ``(x @ W.T)[i]`` generally differs from ``x[i:i+1] @ W.T`` in the last
    ulp because BLAS picks different blocking/accumulation orders for
    different shapes.  Feeding matmul a stacked ``[B, 1, n] @ [n, m]``
    instead routes every row through the identical ``[1, n]`` kernel — the
    same one a singleton update uses — so each row's bits are independent of
    how many rows ride along, at a C-level loop's cost rather than Python's.
    The batch-size invariance (and hence the wave scheduler's bit-exact
    coalescing) is pinned by ``test_update_kernels_are_batch_size_invariant``.
    """
    out = np.matmul(x[:, None, :], weight.T)[:, 0, :]
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, matching ``Tensor.relu`` (``x * (x > 0)``)."""
    return x * (x > 0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid, matching ``Tensor.sigmoid`` exactly."""
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, -500, 500))),
        np.exp(np.clip(x, -500, 500)) / (1.0 + np.exp(np.clip(x, -500, 500))),
    )


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Branch-masked stable sigmoid — the fused GRU step's gate function.

    Delegates to the single implementation in :mod:`repro.nn.rnn` so the
    bit-identity between the batched and autograd GRU paths cannot drift.
    """
    from .rnn import _stable_sigmoid

    return _stable_sigmoid(z)


def gru_step(
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_ih: np.ndarray,
    bias_hh: np.ndarray,
) -> np.ndarray:
    """One batched GRU step over ``[B, input]`` / ``[B, hidden]`` stacks.

    Same arithmetic as :func:`repro.nn.rnn.fused_gru_step`'s forward pass
    (PyTorch gate convention) minus the autograd bookkeeping, contracted via
    :func:`row_stable_linear` so the step is batch-size invariant: a wave of
    updates equals the same updates applied one at a time, bit for bit.
    """
    hidden = h_prev.shape[1]
    gates_i = row_stable_linear(x, weight_ih, bias_ih)
    gates_h = row_stable_linear(h_prev, weight_hh, bias_hh)
    reset = stable_sigmoid(gates_i[:, :hidden] + gates_h[:, :hidden])
    update = stable_sigmoid(gates_i[:, hidden : 2 * hidden] + gates_h[:, hidden : 2 * hidden])
    candidate = np.tanh(gates_i[:, 2 * hidden :] + reset * gates_h[:, 2 * hidden :])
    return (1.0 - update) * candidate + update * h_prev


def lstm_step(
    x: np.ndarray,
    state: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_ih: np.ndarray,
    bias_hh: np.ndarray,
) -> np.ndarray:
    """One batched, batch-size-invariant LSTM step over the packed ``[B, 2*hidden]`` state."""
    hidden = state.shape[1] // 2
    h_prev = state[:, :hidden]
    c_prev = state[:, hidden:]
    gates = row_stable_linear(x, weight_ih, bias_ih) + row_stable_linear(h_prev, weight_hh, bias_hh)
    i_gate = sigmoid(gates[:, :hidden])
    f_gate = sigmoid(gates[:, hidden : 2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o_gate = sigmoid(gates[:, 3 * hidden :])
    c_new = f_gate * c_prev + i_gate * g_gate
    h_new = o_gate * np.tanh(c_new)
    return np.concatenate([h_new, c_new], axis=1)


def elman_step(
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """One batched, batch-size-invariant tanh (Elman) step."""
    return np.tanh(row_stable_linear(x, weight_ih, bias) + row_stable_linear(h_prev, weight_hh))


def cell_step(cell, x: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Dispatch one batched inference step for any registered recurrent cell.

    ``cell`` is a :class:`~repro.nn.rnn.RecurrentCell` instance; the kernels
    read its parameter arrays directly.
    """
    from .rnn import ElmanCell, GRUCell, LSTMCell

    x = np.asarray(x, dtype=np.float64)
    state = np.asarray(state, dtype=np.float64)
    if isinstance(cell, GRUCell):
        return gru_step(
            x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias_ih.data, cell.bias_hh.data
        )
    if isinstance(cell, LSTMCell):
        return lstm_step(
            x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias_ih.data, cell.bias_hh.data
        )
    if isinstance(cell, ElmanCell):
        return elman_step(x, state, cell.weight_ih.data, cell.weight_hh.data, cell.bias.data)
    raise TypeError(f"no inference kernel for cell type {type(cell).__name__}")
