"""Functional (stateless) neural-network operations.

These mirror the small subset of ``torch.nn.functional`` used by the paper's
model code (Figure 3): activations, dropout, and the binary log-loss
objective described in Section 6.3.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, concat, stack

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "dropout",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "concat",
    "stack",
    "linear",
]

_EPS = 1e-12


def sigmoid(x: Tensor) -> Tensor:
    """Element-wise logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Element-wise hyperbolic tangent."""
    return as_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    """Element-wise rectified linear unit."""
    return as_tensor(x).relu()


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch convention)."""
    out = as_tensor(x) @ weight.T
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout.

    During training each element is zeroed with probability ``p`` and the
    survivors are scaled by ``1/(1-p)`` so the expected activation is
    unchanged; at evaluation time the input passes through untouched.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def binary_cross_entropy(probabilities: Tensor, targets, weights=None) -> Tensor:
    """Mean binary log loss between predicted probabilities and 0/1 targets.

    This is the per-session log loss of Section 6.3:
    ``-[A·log p + (1-A)·log(1-p)]`` averaged over all prediction/label pairs
    (optionally weighted).
    """
    probabilities = as_tensor(probabilities)
    clipped = probabilities.clip(_EPS, 1.0 - _EPS)
    targets_t = as_tensor(np.asarray(targets, dtype=np.float64))
    losses = -(targets_t * clipped.log() + (1.0 - targets_t) * (1.0 - clipped).log())
    if weights is not None:
        weights_arr = np.asarray(weights, dtype=np.float64)
        total = float(weights_arr.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return (losses * Tensor(weights_arr)).sum() * (1.0 / total)
    return losses.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets, weights=None) -> Tensor:
    """Numerically stable binary log loss computed from raw logits."""
    logits = as_tensor(logits)
    targets_t = as_tensor(np.asarray(targets, dtype=np.float64))
    # log(1 + exp(-|z|)) + max(z, 0) - z*y  (stable softplus formulation)
    abs_neg = (logits * -1.0).relu() + (logits.relu())  # |z|
    softplus = ((abs_neg * -1.0).exp() + 1.0).log()
    losses = logits.relu() - logits * targets_t + softplus
    if weights is not None:
        weights_arr = np.asarray(weights, dtype=np.float64)
        total = float(weights_arr.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return (losses * Tensor(weights_arr)).sum() * (1.0 / total)
    return losses.mean()
