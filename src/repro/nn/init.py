"""Parameter initialisation schemes.

The defaults mirror PyTorch's: linear layers use Kaiming-uniform fan-in
initialisation with ``a=sqrt(5)`` (equivalent to the classic
``U(-1/sqrt(fan_in), 1/sqrt(fan_in))`` bound used below), and recurrent cells
use the same uniform bound computed from the hidden size.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_fan_in",
    "xavier_uniform",
    "orthogonal",
    "zeros",
]


def uniform_fan_in(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style uniform initialisation ``U(-1/sqrt(fan_in), +1/sqrt(fan_in))``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_out, fan_in)`` matrix."""
    fan_out, fan_in = shape
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (useful for recurrent weight matrices)."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases and initial hidden states)."""
    return np.zeros(shape, dtype=np.float64)
