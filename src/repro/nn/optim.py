"""Optimizers for the autograd engine.

The paper trains its RNNs with Adam at a learning rate of ``1e-3``
(Section 7); SGD (with optional momentum) is provided as a simpler
alternative, and :func:`clip_grad_norm_` implements the standard global-norm
gradient clipping used to keep back-propagation through long user histories
stable.
"""

from __future__ import annotations

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm_"]


class Optimizer:
    """Base class holding a parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-2, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step_count
        bias2 = 1.0 - beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm_(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm so callers can log it.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm
