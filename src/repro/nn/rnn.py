"""Recurrent cells: GRU, LSTM and a plain tanh (Elman) cell.

Section 6.2 of the paper evaluates three options for the hidden-state update
function ``RNN_update`` — a basic tanh recurrent unit, a gated recurrent unit
(GRU) and an LSTM — and finds that GRUs perform best on every dataset.  All
three are provided here behind a common :class:`RecurrentCell` interface so
the ablation benchmark can swap them freely.

All cells follow the PyTorch ``*Cell`` convention: they process one time step
for a batch, taking an input of shape ``(batch, input_size)`` and a hidden
state of shape ``(batch, hidden_size)`` and returning the new hidden state.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .modules import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["RecurrentCell", "GRUCell", "LSTMCell", "ElmanCell", "make_cell", "fused_gru_step"]


class RecurrentCell(Module):
    """Interface for single-step recurrent units."""

    input_size: int
    hidden_size: int

    def initial_state(self, batch_size: int = 1) -> Tensor:
        """All-zero initial hidden state ``h_0`` (Section 6.1)."""
        return Tensor(np.zeros((batch_size, self.state_size), dtype=np.float64))

    @property
    def state_size(self) -> int:
        """Width of the serialized hidden state (2*hidden for LSTM)."""
        return self.hidden_size

    def hidden_slice(self, states):
        """The predictor-visible ``h`` part of a batched state stack.

        Works on NumPy arrays and Tensors alike (plain column slicing).
        Cells with packed state (LSTM's ``[h; c]``) override this; it is the
        single source of truth for the state layout on both the autograd and
        batched serving paths.
        """
        return states

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def fused_gru_step(
    inputs: Tensor,
    state: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias_ih: Tensor,
    bias_hh: Tensor,
) -> Tensor:
    """One GRU step as a single autograd node.

    Back-propagation through user histories visits tens of thousands of GRU
    steps per minibatch; building the step from ~25 primitive tensor ops makes
    Python graph overhead the training bottleneck.  This fused op computes the
    PyTorch-convention GRU update in NumPy and implements its exact backward
    pass by hand (validated against the composable implementation and finite
    differences in the test suite).
    """
    inputs = as_tensor(inputs)
    state = as_tensor(state)
    hidden = state.data.shape[1]

    x = inputs.data
    h_prev = state.data
    gates_i = x @ weight_ih.data.T + bias_ih.data
    gates_h = h_prev @ weight_hh.data.T + bias_hh.data
    reset = _stable_sigmoid(gates_i[:, :hidden] + gates_h[:, :hidden])
    update = _stable_sigmoid(gates_i[:, hidden : 2 * hidden] + gates_h[:, hidden : 2 * hidden])
    gh_candidate = gates_h[:, 2 * hidden :]
    candidate = np.tanh(gates_i[:, 2 * hidden :] + reset * gh_candidate)
    out_data = (1.0 - update) * candidate + update * h_prev

    parents = (inputs, state, weight_ih, weight_hh, bias_ih, bias_hh)

    def backward(grad: np.ndarray) -> None:
        d_candidate = grad * (1.0 - update)
        d_update = grad * (h_prev - candidate)
        d_h_prev = grad * update

        d_candidate_pre = d_candidate * (1.0 - candidate**2)
        d_reset = d_candidate_pre * gh_candidate
        d_reset_pre = d_reset * reset * (1.0 - reset)
        d_update_pre = d_update * update * (1.0 - update)

        d_gates_i = np.concatenate([d_reset_pre, d_update_pre, d_candidate_pre], axis=1)
        d_gates_h = np.concatenate([d_reset_pre, d_update_pre, d_candidate_pre * reset], axis=1)

        if inputs.requires_grad:
            inputs._accumulate(d_gates_i @ weight_ih.data)
        if state.requires_grad:
            state._accumulate(d_h_prev + d_gates_h @ weight_hh.data)
        if weight_ih.requires_grad:
            weight_ih._accumulate(d_gates_i.T @ x)
        if weight_hh.requires_grad:
            weight_hh._accumulate(d_gates_h.T @ h_prev)
        if bias_ih.requires_grad:
            bias_ih._accumulate(d_gates_i.sum(axis=0))
        if bias_hh.requires_grad:
            bias_hh._accumulate(d_gates_h.sum(axis=0))

    return Tensor._result(out_data, parents, backward)


class GRUCell(RecurrentCell):
    """Gated recurrent unit (Cho et al., 2014).

    Gate equations (PyTorch convention)::

        r = sigma(W_ir x + b_ir + W_hr h + b_hr)
        z = sigma(W_iz x + b_iz + W_hz h + b_hz)
        n = tanh (W_in x + b_in + r * (W_hn h + b_hn))
        h' = (1 - z) * n + z * h

    ``forward`` uses the fused single-node implementation for speed;
    ``forward_composed`` builds the same computation from primitive ops and is
    kept for gradient cross-checking in the tests.
    """

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.uniform_fan_in((3 * hidden_size, input_size), hidden_size, rng))
        self.weight_hh = Parameter(init.uniform_fan_in((3 * hidden_size, hidden_size), hidden_size, rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        return fused_gru_step(inputs, state, self.weight_ih, self.weight_hh, self.bias_ih, self.bias_hh)

    def forward_composed(self, inputs: Tensor, state: Tensor) -> Tensor:
        """Reference implementation built from primitive autograd ops."""
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        h = self.hidden_size
        gates_i = F.linear(inputs, self.weight_ih, self.bias_ih)
        gates_h = F.linear(state, self.weight_hh, self.bias_hh)
        reset = (gates_i[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_i[:, h:2 * h] + gates_h[:, h:2 * h]).sigmoid()
        candidate = (gates_i[:, 2 * h:] + reset * gates_h[:, 2 * h:]).tanh()
        return (1.0 - update) * candidate + update * state


class LSTMCell(RecurrentCell):
    """Long short-term memory cell.

    The cell state ``c`` and hidden state ``h`` are packed side by side into
    a single ``(batch, 2*hidden)`` state vector so that the rest of the
    library (and the key-value store in the serving layer) can treat every
    cell's state as one opaque vector.
    """

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.uniform_fan_in((4 * hidden_size, input_size), hidden_size, rng))
        self.weight_hh = Parameter(init.uniform_fan_in((4 * hidden_size, hidden_size), hidden_size, rng))
        self.bias_ih = Parameter(init.zeros((4 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((4 * hidden_size,)))

    @property
    def state_size(self) -> int:
        return 2 * self.hidden_size

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        hsize = self.hidden_size
        h_prev = state[:, :hsize]
        c_prev = state[:, hsize:]
        gates = F.linear(inputs, self.weight_ih, self.bias_ih) + F.linear(h_prev, self.weight_hh, self.bias_hh)
        i_gate = gates[:, :hsize].sigmoid()
        f_gate = gates[:, hsize:2 * hsize].sigmoid()
        g_gate = gates[:, 2 * hsize:3 * hsize].tanh()
        o_gate = gates[:, 3 * hsize:].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return F.concat([h_new, c_new], axis=1)

    def hidden_part(self, state: Tensor) -> Tensor:
        """Extract the ``h`` half of the packed state (fed to the predictor)."""
        return self.hidden_slice(state)

    def hidden_slice(self, states):
        return states[:, : self.hidden_size]


class ElmanCell(RecurrentCell):
    """Basic tanh recurrent unit: ``h' = tanh(W_ih x + W_hh h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.uniform_fan_in((hidden_size, input_size), hidden_size, rng))
        self.weight_hh = Parameter(init.uniform_fan_in((hidden_size, hidden_size), hidden_size, rng))
        self.bias = Parameter(init.zeros((hidden_size,)))

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        return (F.linear(inputs, self.weight_ih, self.bias) + F.linear(state, self.weight_hh)).tanh()


_CELL_REGISTRY = {
    "gru": GRUCell,
    "lstm": LSTMCell,
    "tanh": ElmanCell,
    "elman": ElmanCell,
}


def make_cell(kind: str, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None) -> RecurrentCell:
    """Construct a recurrent cell by name (``"gru"``, ``"lstm"`` or ``"tanh"``)."""
    try:
        cls = _CELL_REGISTRY[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown cell kind {kind!r}; expected one of {sorted(_CELL_REGISTRY)}") from None
    return cls(input_size, hidden_size, rng=rng)
