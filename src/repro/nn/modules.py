"""Neural-network module system (a minimal ``torch.nn`` replacement).

Modules own named parameters (:class:`Parameter` tensors with
``requires_grad=True``), can be nested, support ``train()``/``eval()`` mode
switching (needed for dropout), and expose ``state_dict`` /
``load_state_dict`` for serialization of trained models — which the serving
layer relies on to "ship" a trained model into the simulated remote
execution environment (Section 9 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Dropout", "ReLU", "Sequential", "MLP", "Identity"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration machinery
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter iteration / mode switching
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (prefix + name, parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> list[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters (used by the serving cost model)."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to array copies."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data[...] = value

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transformation ``y = x W^T + b`` (PyTorch ``nn.Linear`` convention)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.uniform_fan_in((out_features, in_features), in_features, rng))
        if bias:
            self.bias = Parameter(init.uniform_fan_in((out_features,), in_features, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Dropout(Module):
    """Inverted dropout layer (active only in training mode)."""

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class ReLU(Module):
    """Rectified linear unit layer."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Identity(Module):
    """No-op layer (useful as a configurable placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._sequence: list[Module] = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._sequence.append(module)

    def __len__(self) -> int:
        return len(self._sequence)

    def __iter__(self):
        return iter(self._sequence)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._sequence:
            x = module(x)
        return x


class MLP(Module):
    """Feed-forward multilayer perceptron with ReLU activations.

    The paper's predictor head is a single 128-unit hidden layer with ReLU
    and a 20% dropout in the middle (Sections 6.2 and 7); this class
    generalises that to an arbitrary stack of hidden layers.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: tuple[int, ...],
        out_features: int,
        *,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: list[Module] = []
        previous = in_features
        for size in hidden_sizes:
            layers.append(Linear(previous, size, rng=rng))
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            layers.append(ReLU())
            previous = size
        layers.append(Linear(previous, out_features, rng=rng))
        self.layers = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)
