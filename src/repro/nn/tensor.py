"""A small reverse-mode automatic differentiation engine on top of NumPy.

The paper trains its models with PyTorch v1.1.  This environment has no
PyTorch, so the library ships its own tape-based autograd engine.  It
implements exactly the operations needed by the models in the paper (GRU /
LSTM cells, linear layers, element-wise products for the latent cross,
sigmoid / tanh / ReLU activations, dropout and binary log loss), but it is a
general-purpose engine: any composition of the provided operations is
differentiable.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (always ``float64``) plus an
  optional gradient buffer and a closure describing how to push gradients to
  its parents.
* ``backward()`` performs a topological sort of the recorded graph and runs
  the per-node backward closures in reverse order.
* Broadcasting is fully supported; gradients are "unbroadcast" (summed) back
  to the parent shapes.
* Graphs are built eagerly on every operation; :func:`no_grad` disables graph
  construction, which is used during evaluation/serving.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]


_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Mirrors ``torch.no_grad()``: operations performed inside the block
    produce tensors with ``requires_grad=False`` and record no backward
    closures, which makes inference cheaper and side-effect free.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape``.

    NumPy broadcasting can expand a parent of shape ``shape`` up to the shape
    of ``grad``; the adjoint of broadcasting is summation over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        # Topological sort (iterative to avoid recursion limits on long
        # RNN sequences).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementary arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._result(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._result(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._result(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._result(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._result(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._result(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._result(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Non-linearities (kept on the class for convenience; also exposed in
    # :mod:`repro.nn.functional`)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._result(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._result(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500)) / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._result(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._result(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._result(out_data, (self,), backward)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` (scalar, array or Tensor) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._result(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._result(out_data, tuple(tensors), backward)
