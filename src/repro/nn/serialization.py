"""Saving and loading module parameters.

Trained models are stored as ``.npz`` archives mapping parameter names to
arrays.  This stands in for the TorchScript export step of the paper's
production deployment (Section 9): the serving layer loads a saved state
dict into a freshly constructed module and runs it with ``no_grad``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .modules import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_into_module"]

_META_KEY = "__repro_meta__"


def save_state_dict(state: dict[str, np.ndarray], path: str | Path, metadata: dict | None = None) -> None:
    """Write a parameter-name → array mapping (plus optional JSON metadata) to ``path``."""
    path = Path(path)
    payload = dict(state)
    if metadata is not None:
        payload[_META_KEY] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_state_dict(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a state dict written by :func:`save_state_dict`.

    Returns ``(state, metadata)``; metadata is ``{}`` when none was saved.
    """
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files if name != _META_KEY}
        metadata: dict = {}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    return state, metadata


def save_module(module: Module, path: str | Path, metadata: dict | None = None) -> None:
    """Save ``module.state_dict()`` to ``path``."""
    save_state_dict(module.state_dict(), path, metadata=metadata)


def load_into_module(module: Module, path: str | Path) -> dict:
    """Load parameters from ``path`` into an existing module; returns metadata."""
    state, metadata = load_state_dict(path)
    module.load_state_dict(state)
    return metadata
