"""NumPy-based neural-network substrate (autograd, layers, RNN cells, optimizers).

This subpackage replaces the PyTorch dependency of the original paper with a
self-contained implementation sufficient to express the models of Sections 6
and 7: a reverse-mode autograd engine (:mod:`repro.nn.tensor`), layer modules
(:mod:`repro.nn.modules`), recurrent cells (:mod:`repro.nn.rnn`), optimizers
(:mod:`repro.nn.optim`) and state-dict serialization
(:mod:`repro.nn.serialization`).
"""

from . import functional, inference
from .modules import MLP, Dropout, Identity, Linear, Module, Parameter, ReLU, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm_
from .rnn import ElmanCell, GRUCell, LSTMCell, RecurrentCell, make_cell
from .serialization import load_into_module, load_state_dict, save_module, save_state_dict
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack

__all__ = [
    "functional",
    "inference",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "ReLU",
    "Identity",
    "Sequential",
    "MLP",
    "RecurrentCell",
    "GRUCell",
    "LSTMCell",
    "ElmanCell",
    "make_cell",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm_",
    "save_module",
    "save_state_dict",
    "load_state_dict",
    "load_into_module",
]
