"""repro — reproduction of "Predictive Precompute with Recurrent Neural Networks" (MLSys 2020).

The package is organised bottom-up:

* :mod:`repro.nn` — NumPy autograd, layers, recurrent cells, optimizers
  (the PyTorch substitute).
* :mod:`repro.ml` — logistic regression and gradient-boosted trees
  (the scikit-learn / XGBoost substitutes).
* :mod:`repro.features` — the feature engineering of Section 5.2 and the
  per-session feature vectors for the RNN.
* :mod:`repro.data` — access-log schema and the synthetic MobileTab /
  Timeshift / MPU trace generators.
* :mod:`repro.models` — the four access-probability models behind a common
  interface (percentage baseline, LR, GBDT, RNN).
* :mod:`repro.core` — precompute trigger policies and outcome accounting.
* :mod:`repro.serving` — the ``ServingEngine`` facade (declarative
  ``EngineConfig`` → KV store, stream processing, micro-batch queue,
  hidden-state vs aggregation-feature backends), cost model, online
  experiment.
* :mod:`repro.metrics` — PR curves, PR-AUC, recall at precision, log loss.
* :mod:`repro.experiments` — one registered experiment per table/figure of
  the paper's evaluation.

Quickstart::

    from repro.data import make_dataset, user_split
    from repro.models import RNNModel, TaskSpec
    from repro.metrics import pr_auc

    dataset = make_dataset("mobiletab", n_users=200, seed=0)
    split = user_split(dataset, test_fraction=0.1)
    model = RNNModel().fit(split.train, TaskSpec(kind="session"))
    result = model.evaluate(split.test, TaskSpec(kind="session"))
    print(pr_auc(result.y_true, result.y_score))
"""

__version__ = "0.2.0"

__all__ = ["__version__"]
