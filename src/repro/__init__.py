"""repro — reproduction of "Predictive Precompute with Recurrent Neural Networks" (MLSys 2020).

The package is organised bottom-up:

* :mod:`repro.nn` — NumPy autograd, layers, recurrent cells, optimizers
  (the PyTorch substitute).
* :mod:`repro.ml` — logistic regression and gradient-boosted trees
  (the scikit-learn / XGBoost substitutes).
* :mod:`repro.features` — the feature engineering of Section 5.2 and the
  per-session feature vectors for the RNN.
* :mod:`repro.data` — access-log schema and the synthetic MobileTab /
  Timeshift / MPU trace generators.
* :mod:`repro.models` — the four access-probability models behind a common
  interface (percentage baseline, LR, GBDT, RNN).
* :mod:`repro.core` — precompute trigger policies and outcome accounting.
* :mod:`repro.serving` — the ``ServingEngine`` facade (declarative
  ``EngineConfig`` → KV store, stream processing, micro-batch queue,
  hidden-state vs aggregation-feature backends), cost model, online
  experiment.
* :mod:`repro.metrics` — PR curves, PR-AUC, recall at precision, log loss.
* :mod:`repro.experiments` — a typed experiment registry behind one
  manifest-driven runner (``python -m repro.experiments``), one registered
  experiment per table/figure/load test of the paper's evaluation.

Quickstart::

    from repro.data import make_dataset, user_split
    from repro.models import RNNModel, TaskSpec
    from repro.metrics import pr_auc

    dataset = make_dataset("mobiletab", n_users=200, seed=0)
    split = user_split(dataset, test_fraction=0.1)
    model = RNNModel().fit(split.train, TaskSpec(kind="session"))
    result = model.evaluate(split.test, TaskSpec(kind="session"))
    print(pr_auc(result.y_true, result.y_score))

Or run the paper's whole evaluation from a declarative manifest::

    import repro

    runs = repro.run_manifest(repro.load_manifest("manifests/smoke.json"), out_dir="artifacts")
    print(runs[0].result.format_table())
"""

__version__ = "0.3.0"

#: Curated top-level surface, imported lazily (PEP 562) so ``import repro``
#: stays cheap: manifest consumers get the serving facade and the experiment
#: runner without reaching into submodules.
_TOP_LEVEL_EXPORTS = {
    "ServingEngine": "repro.serving",
    "EngineConfig": "repro.serving",
    "ExperimentResult": "repro.experiments",
    "run_experiment": "repro.experiments",
    "load_manifest": "repro.experiments",
    "run_manifest": "repro.experiments",
}

__all__ = ["__version__", *sorted(_TOP_LEVEL_EXPORTS)]


def __getattr__(name: str):
    if name in _TOP_LEVEL_EXPORTS:
        import importlib

        value = getattr(importlib.import_module(_TOP_LEVEL_EXPORTS[name]), name)
        globals()[name] = value  # cache: subsequent lookups skip __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_TOP_LEVEL_EXPORTS))
